// The theorem-level test suites: the generalized BG engine run across
// (source, target) model grids, with seeded adversarial schedules and
// crash plans up to the target's full budget. These are the executable
// versions of Theorem 1 (Section 3.4) and Theorem 3 (Section 4.4).
#include <gtest/gtest.h>

#include "src/core/bg_engine.h"
#include "src/core/pipeline.h"
#include "src/tasks/algorithms.h"
#include "src/tasks/task.h"

namespace mpcn {
namespace {

ExecutionOptions lockstep(std::uint64_t seed, std::uint64_t limit = 6000000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kLockstep;
  o.seed = seed;
  o.step_limit = limit;
  return o;
}

std::vector<Value> int_inputs(int n, int base = 100) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(Value(base + i));
  return v;
}

void expect_solves_kset(const Outcome& out, int k,
                        const std::vector<Value>& inputs,
                        const std::string& label) {
  ASSERT_FALSE(out.timed_out) << label << ": run timed out";
  EXPECT_TRUE(out.all_correct_decided())
      << label << ": a correct simulator failed to decide";
  KSetAgreementTask task(k);
  std::string why;
  EXPECT_TRUE(task.validate(inputs, out.decisions, &why))
      << label << ": " << why;
}

// =========================================================================
// Section 4 direction — ASM(n,t,1) source simulated in ASM(n,t',x).
// Source: trivial (t+1)-set agreement. Every (t', x) with ⌊t'/x⌋ <= t
// must solve (t+1)-set agreement, even with t' simulator crashes.

struct BackwardCase {
  int n_src, t_src;      // source ASM(n, t, 1)
  int n_tgt, t_tgt, x_tgt;  // target ASM(n', t', x')
};

class BackwardSimulation
    : public ::testing::TestWithParam<std::tuple<BackwardCase, std::uint64_t>> {
};

TEST_P(BackwardSimulation, SolvesSourceTask) {
  const BackwardCase c = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  SimulatedAlgorithm a = trivial_kset_algorithm(c.n_src, c.t_src);
  const ModelSpec target{c.n_tgt, c.t_tgt, c.x_tgt};
  ASSERT_LE(target.power(), a.model.power()) << "bad test case";
  ExecutionOptions o = lockstep(seed);
  // Crash up to the target's full budget with a seeded hazard.
  o.crashes = CrashPlan::hazard(0.0015, c.t_tgt, seed * 31 + 7);
  const std::vector<Value> inputs = int_inputs(c.n_tgt);
  Outcome out = run_simulated(a, target, inputs, o);
  expect_solves_kset(out, c.t_src + 1, inputs,
                     a.model.to_string() + " in " + target.to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BackwardSimulation,
    ::testing::Combine(
        ::testing::Values(
            // ASM(4,1,1) in targets of power <= 1
            BackwardCase{4, 1, 4, 1, 1}, BackwardCase{4, 1, 4, 2, 2},
            BackwardCase{4, 1, 4, 3, 2}, BackwardCase{4, 1, 4, 3, 3},
            BackwardCase{4, 1, 5, 3, 2}, BackwardCase{4, 1, 6, 5, 3},
            // ASM(5,2,1) in targets of power <= 2
            BackwardCase{5, 2, 5, 2, 1}, BackwardCase{5, 2, 5, 4, 2},
            BackwardCase{5, 2, 6, 5, 2}, BackwardCase{5, 2, 4, 3, 2},
            // wait-free-strong target: ASM(4,3,3), power 1
            BackwardCase{4, 1, 4, 3, 3},
            // x' > t' regime (power 0 target) from a power-0 source
            BackwardCase{3, 0, 4, 1, 2}),
        ::testing::Range<std::uint64_t>(1, 6)));

// =========================================================================
// Section 3 direction — ASM(n,t',x) source simulated in ASM(n,t,1).
// Source: group k-set (uses x-consensus objects). Target: read/write.

struct ForwardCase {
  int n_src, t_src, x_src;
  int n_tgt, t_tgt;
};

class ForwardSimulation
    : public ::testing::TestWithParam<std::tuple<ForwardCase, std::uint64_t>> {
};

TEST_P(ForwardSimulation, SolvesSourceTask) {
  const ForwardCase c = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  SimulatedAlgorithm a = group_kset_algorithm(c.n_src, c.t_src, c.x_src);
  const ModelSpec target{c.n_tgt, c.t_tgt, 1};
  ASSERT_LE(target.power(), a.model.power()) << "bad test case";
  ExecutionOptions o = lockstep(seed);
  o.crashes = CrashPlan::hazard(0.0015, c.t_tgt, seed * 17 + 3);
  const std::vector<Value> inputs = int_inputs(c.n_tgt);
  const int k = floor_div(c.t_src, c.x_src) + 1;
  Outcome out = run_simulated(a, target, inputs, o);
  expect_solves_kset(out, k, inputs,
                     a.model.to_string() + " in " + target.to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ForwardSimulation,
    ::testing::Combine(
        ::testing::Values(
            // ASM(4,2,2) (power 1) in ASM(4,1,1) / ASM(5,1,1)
            ForwardCase{4, 2, 2, 4, 1}, ForwardCase{4, 2, 2, 5, 1},
            // ASM(6,3,2) (power 1) in ASM(6,1,1)
            ForwardCase{6, 3, 2, 6, 1},
            // ASM(6,2,3) (power 0) in failure-free read/write
            ForwardCase{6, 2, 3, 6, 0},
            // consensus via x-consensus: ASM(4,1,2) (power 0) in ASM(4,0,1)
            ForwardCase{4, 1, 2, 4, 0},
            // BG-proper n change: ASM(5,2,2) (power 1) in ASM(2,1,1)
            ForwardCase{5, 2, 2, 2, 1}),
        ::testing::Range<std::uint64_t>(1, 6)));

// =========================================================================
// General case — x > 1 on BOTH sides (Section 5).

struct GeneralCase {
  int n_src, t_src, x_src;
  int n_tgt, t_tgt, x_tgt;
};

class GeneralSimulation
    : public ::testing::TestWithParam<std::tuple<GeneralCase, std::uint64_t>> {
};

TEST_P(GeneralSimulation, SolvesSourceTask) {
  const GeneralCase c = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  SimulatedAlgorithm a = group_kset_algorithm(c.n_src, c.t_src, c.x_src);
  const ModelSpec target{c.n_tgt, c.t_tgt, c.x_tgt};
  ASSERT_LE(target.power(), a.model.power()) << "bad test case";
  ExecutionOptions o = lockstep(seed);
  o.crashes = CrashPlan::hazard(0.001, c.t_tgt, seed * 41 + 11);
  const std::vector<Value> inputs = int_inputs(c.n_tgt);
  const int k = floor_div(c.t_src, c.x_src) + 1;
  Outcome out = run_simulated(a, target, inputs, o);
  expect_solves_kset(out, k, inputs,
                     a.model.to_string() + " in " + target.to_string());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneralSimulation,
    ::testing::Combine(
        ::testing::Values(
            // power-1 source ASM(4,2,2) into power-1 / power-0 targets
            GeneralCase{4, 2, 2, 4, 3, 2}, GeneralCase{4, 2, 2, 5, 2, 2},
            GeneralCase{4, 2, 2, 4, 1, 2},
            // power-2 source ASM(6,4,2) into ASM(5,4,2) (power 2)
            GeneralCase{6, 4, 2, 5, 4, 2},
            // cross-x: ASM(6,3,3) (power 1) into ASM(4,2,2) (power 1)
            GeneralCase{6, 3, 3, 4, 2, 2}),
        ::testing::Range<std::uint64_t>(1, 5)));

// =========================================================================
// Structural / negative cases.

TEST(SimulationLegality, PowerConditionIsTheGate) {
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 1);  // power 1
  // power 2 target: rejected.
  EXPECT_THROW(make_simulation(a, ModelSpec{6, 2, 1}), ProtocolError);
  EXPECT_THROW(make_simulation(a, ModelSpec{6, 5, 2}), ProtocolError);
  // power 1 and 0 targets: accepted.
  EXPECT_NO_THROW(make_simulation(a, ModelSpec{6, 1, 1}));
  EXPECT_NO_THROW(make_simulation(a, ModelSpec{6, 3, 2}));
  EXPECT_NO_THROW(make_simulation(a, ModelSpec{6, 0, 1}));
  // Legality check can be disabled for what-breaks experiments.
  SimulationOptions loose;
  loose.check_legality = false;
  EXPECT_NO_THROW(make_simulation(a, ModelSpec{6, 2, 1}, loose));
}

TEST(SimulationStructure, PlanHasOneProgramPerSimulator) {
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 1);
  SimulationPlan plan = make_simulation(a, ModelSpec{7, 3, 2});
  EXPECT_EQ(plan.programs.size(), 7u);
  EXPECT_NE(plan.world, nullptr);
}

// All simulators must adopt decisions consistent with ONE simulated run:
// with consensus as the source task, every simulator decides the same
// value (Lemmas 3-5/9-10 made observable).
class SimulatedConsensusAgreement
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatedConsensusAgreement, AllSimulatorsAgree) {
  SimulatedAlgorithm a = single_object_consensus_algorithm(4, 1, 4);
  // power 0 source; target ASM(5,1,2) has power 0.
  const ModelSpec target{5, 1, 2};
  ExecutionOptions o = lockstep(GetParam());
  o.crashes = CrashPlan::hazard(0.002, 1, GetParam() + 99);
  const std::vector<Value> inputs = int_inputs(5, 200);
  Outcome out = run_simulated(a, target, inputs, o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  EXPECT_EQ(out.distinct_decisions().size(), 1u)
      << "simulated consensus must yield one value across simulators";
  // Validity: the value is some simulator's input.
  const Value v = *out.distinct_decisions().begin();
  EXPECT_GE(v.as_int(), 200);
  EXPECT_LT(v.as_int(), 205);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatedConsensusAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

// Liveness under the maximum legal crash budget, placed adversarially at
// fixed steps (not hazard): t' crashes early in the run.
TEST(SimulationLiveness, FullCrashBudgetEarlyCrashes) {
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 1);
  const ModelSpec target{4, 3, 2};  // power 1, budget 3
  ExecutionOptions o = lockstep(5, 1'500'000);
  o.crashes = CrashPlan::fixed({{0, 15}, {1, 25}, {3, 35}});
  const std::vector<Value> inputs = int_inputs(4);
  Outcome out = run_simulated(a, target, inputs, o);
  ASSERT_FALSE(out.timed_out);
  // Only q2 is correct; it must decide.
  ASSERT_TRUE(out.decisions[2].has_value());
  KSetAgreementTask task(2);
  std::string why;
  EXPECT_TRUE(task.validate(inputs, out.decisions, &why)) << why;
}

// Regression for the Figure 4 mutex2 refinement (see DESIGN.md erratum):
// a simulator crash that poisons ONE simulated x-consensus object must
// not prevent the resolution of OTHER objects. Source: two independent
// 2-ported objects (group k-set with two groups); one early crash; the
// run must still decide everywhere. With a single shared mutex2 this
// livelocks (the thread stuck on the poisoned object's decide holds the
// mutex at every simulator).
class Mutex2PerObject : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Mutex2PerObject, CrashedObjectDoesNotBlockOthers) {
  SimulatedAlgorithm a = group_kset_algorithm(6, 3, 2);  // 3 groups, k = 2
  const ModelSpec target{6, 1, 1};
  ExecutionOptions o = lockstep(GetParam());
  // One crash, placed early so it can land inside an XAG propose.
  o.crashes = CrashPlan::fixed({{0, 10 + static_cast<std::uint64_t>(
                                          GetParam() % 13)}});
  const std::vector<Value> inputs = int_inputs(6);
  Outcome out = run_simulated(a, target, inputs, o);
  expect_solves_kset(out, 2, inputs, "mutex2 regression");
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mutex2PerObject,
                         ::testing::Range<std::uint64_t>(1, 16));

// =========================================================================
// The blocking lemmas' converse, via the white-box propose-trap adversary.
//
// Lemma 7 says <= ⌊t'/x⌋ simulated processes block; these tests realize
// the adversary that achieves the bound exactly and check the blocking
// *happens* (the impossibility side of the main theorem, deterministic).

class ProposeTrapBlocksX1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProposeTrapBlocksX1, OneMidProposeCrashBlocksOneProcess) {
  // Target x = 1: one crash between the level-1 write and the stabilize
  // write poisons INPUT/0; the 0-resilient source then never finishes.
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 0);
  ExecutionOptions o = lockstep(GetParam(), 60'000);
  o.crashes = CrashPlan::propose_trap({"INPUT/0"}, 1, 2);
  SimulationOptions so;
  so.check_legality = false;  // power 1 target vs power 0 source
  Outcome out = run_simulated(a, ModelSpec{4, 1, 1}, int_inputs(4),
                              o, so);
  EXPECT_TRUE(out.timed_out) << "p0 must block, stalling the whole task";
  EXPECT_EQ(out.decided_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProposeTrapBlocksX1,
                         ::testing::Range<std::uint64_t>(1, 9));

class OwnerTrapBlocksX2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OwnerTrapBlocksX2, XOwnerCrashesPoisonOneAgreement) {
  // Target x = 2: crash both elected owners of INPUT/0 right after their
  // T&S wins — the exact Theorem 2 scenario. Blocks p0 deterministically.
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 0);
  ExecutionOptions o = lockstep(GetParam(), 60'000);
  o.crashes = CrashPlan::propose_trap({"INPUT/0"}, 2, 1,
                                      CrashPlan::TrapPoint::kOwnerElected);
  SimulationOptions so;
  so.check_legality = false;
  Outcome out = run_simulated(a, ModelSpec{4, 2, 2}, int_inputs(4),
                              o, so);
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(out.decided_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OwnerTrapBlocksX2,
                         ::testing::Range<std::uint64_t>(1, 9));

// The legal side under the same adversary: if the source tolerates the
// blocked process (t1 = 1), the trap must NOT prevent termination.
class TrapWithinResilience : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TrapWithinResilience, ToleratedBlockStillSolves) {
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 1);  // tolerates 1
  ExecutionOptions o = lockstep(GetParam());
  o.crashes = CrashPlan::propose_trap({"INPUT/0"}, 2, 1,
                                      CrashPlan::TrapPoint::kOwnerElected);
  const std::vector<Value> inputs = int_inputs(4);
  Outcome out = run_simulated(a, ModelSpec{4, 2, 2}, inputs, o);
  expect_solves_kset(out, 2, inputs, "trap within resilience");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrapWithinResilience,
                         ::testing::Range<std::uint64_t>(1, 9));

// x-1 owner crashes must NOT poison an x-safe agreement (Theorem 2's
// termination property at the boundary).
class OwnerTrapXMinus1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OwnerTrapXMinus1, OneOwnerCrashToleratedByX2Agreement) {
  SimulatedAlgorithm a = trivial_kset_algorithm(4, 0);  // tolerates 0
  ExecutionOptions o = lockstep(GetParam());
  // Only ONE owner of INPUT/0 crashes: the object must still decide and
  // the 0-resilient source must still terminate everywhere.
  o.crashes = CrashPlan::propose_trap({"INPUT/0"}, 1, 1,
                                      CrashPlan::TrapPoint::kOwnerElected);
  SimulationOptions so;
  so.check_legality = false;
  const std::vector<Value> inputs = int_inputs(4);
  Outcome out = run_simulated(a, ModelSpec{4, 2, 2}, inputs, o, so);
  expect_solves_kset(out, 1, inputs, "x-1 owner crashes tolerated");
}

INSTANTIATE_TEST_SUITE_P(Seeds, OwnerTrapXMinus1,
                         ::testing::Range<std::uint64_t>(1, 9));

// Free-mode (real concurrency) end-to-end run.
TEST(SimulationFreeMode, BackwardUnderRealThreads) {
  for (std::uint64_t round = 0; round < 5; ++round) {
    SimulatedAlgorithm a = trivial_kset_algorithm(4, 1);
    ExecutionOptions o;
    o.mode = SchedulerMode::kFree;
    o.step_limit = 50'000'000;
    const std::vector<Value> inputs = int_inputs(4);
    Outcome out = run_simulated(a, ModelSpec{4, 3, 2}, inputs, o);
    ASSERT_FALSE(out.timed_out);
    EXPECT_TRUE(out.all_correct_decided());
    KSetAgreementTask task(2);
    std::string why;
    EXPECT_TRUE(task.validate(inputs, out.decisions, &why)) << why;
  }
}

}  // namespace
}  // namespace mpcn
