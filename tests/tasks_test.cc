// Tests: src/tasks — validators and the algorithm zoo run *natively* in
// their own models (the baselines the simulations are compared against).
#include <gtest/gtest.h>

#include "src/common/errors.h"
#include "src/core/pipeline.h"
#include "src/tasks/algorithms.h"
#include "src/tasks/task.h"

namespace mpcn {
namespace {

ExecutionOptions lockstep(std::uint64_t seed, std::uint64_t limit = 400000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kLockstep;
  o.seed = seed;
  o.step_limit = limit;
  return o;
}

std::vector<Value> int_inputs(int n, int base = 0) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(Value(base + i));
  return v;
}

// --- validators ---

TEST(KSetTask, AcceptsLegalOutputs) {
  KSetAgreementTask task(2);
  std::vector<Value> in{Value(1), Value(2), Value(3)};
  std::vector<std::optional<Value>> out{Value(1), Value(2), Value(1)};
  EXPECT_TRUE(task.validate(in, out));
}

TEST(KSetTask, RejectsTooManyValues) {
  KSetAgreementTask task(2);
  std::vector<Value> in{Value(1), Value(2), Value(3)};
  std::vector<std::optional<Value>> out{Value(1), Value(2), Value(3)};
  std::string why;
  EXPECT_FALSE(task.validate(in, out, &why));
  EXPECT_NE(why.find("agreement"), std::string::npos);
}

TEST(KSetTask, RejectsUnproposedValue) {
  KSetAgreementTask task(3);
  std::vector<Value> in{Value(1), Value(2)};
  std::vector<std::optional<Value>> out{Value(9), std::nullopt};
  std::string why;
  EXPECT_FALSE(task.validate(in, out, &why));
  EXPECT_NE(why.find("validity"), std::string::npos);
}

TEST(KSetTask, UndecidedEntriesUnconstrained) {
  KSetAgreementTask task(1);
  std::vector<Value> in{Value(5), Value(5)};
  std::vector<std::optional<Value>> out{std::nullopt, std::nullopt};
  EXPECT_TRUE(task.validate(in, out));
}

TEST(KSetTask, NamesAndNumbers) {
  EXPECT_EQ(KSetAgreementTask(3).name(), "3-set-agreement");
  EXPECT_EQ(KSetAgreementTask(3).set_consensus_number(), 3);
  EXPECT_EQ(ConsensusTask().name(), "consensus");
  EXPECT_EQ(ConsensusTask().set_consensus_number(), 1);
  EXPECT_THROW(KSetAgreementTask(0), ProtocolError);
}

TEST(RenamingCheck, DistinctNamesInRange) {
  RenamingCheck c{5};
  std::vector<std::optional<Value>> ok{Value(1), Value(3), std::nullopt};
  EXPECT_TRUE(c.validate(ok));
  std::vector<std::optional<Value>> dup{Value(2), Value(2)};
  EXPECT_FALSE(c.validate(dup));
  std::vector<std::optional<Value>> range{Value(6)};
  EXPECT_FALSE(c.validate(range));
  std::vector<std::optional<Value>> zero{Value(0)};
  EXPECT_FALSE(c.validate(zero));
  std::vector<std::optional<Value>> notint{Value("a")};
  EXPECT_FALSE(c.validate(notint));
}

// --- trivial k-set, native, across (n, t) with crashes ---

class TrivialKsetNative
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(TrivialKsetNative, SolvesTplus1SetAgreement) {
  const int n = std::get<0>(GetParam());
  const int t = std::get<1>(GetParam());
  const std::uint64_t seed = std::get<2>(GetParam());
  if (t >= n) GTEST_SKIP();
  SimulatedAlgorithm a = trivial_kset_algorithm(n, t);
  ExecutionOptions o = lockstep(seed);
  o.crashes = CrashPlan::hazard(0.002, t, seed * 7 + 1);
  Outcome out = run_direct(a, int_inputs(n), o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  KSetAgreementTask task(t + 1);
  std::string why;
  EXPECT_TRUE(task.validate(int_inputs(n), out.decisions, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrivialKsetNative,
    ::testing::Combine(::testing::Values(3, 5, 7), ::testing::Values(1, 2, 4),
                       ::testing::Range<std::uint64_t>(1, 6)));

// --- group k-set, native in ASM(n,t,x), across (n, t, x) with crashes ---

class GroupKsetNative : public ::testing::TestWithParam<
                            std::tuple<int, int, int, std::uint64_t>> {};

TEST_P(GroupKsetNative, SolvesFloorPlus1SetAgreement) {
  const int n = std::get<0>(GetParam());
  const int t = std::get<1>(GetParam());
  const int x = std::get<2>(GetParam());
  const std::uint64_t seed = std::get<3>(GetParam());
  if (t >= n || x > n || floor_div(n, x) <= floor_div(t, x)) GTEST_SKIP();
  SimulatedAlgorithm a = group_kset_algorithm(n, t, x);
  ExecutionOptions o = lockstep(seed);
  o.crashes = CrashPlan::hazard(0.002, t, seed * 13 + 5);
  Outcome out = run_direct(a, int_inputs(n, 50), o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  const int k = floor_div(t, x) + 1;  // the paper's frontier
  KSetAgreementTask task(k);
  std::string why;
  EXPECT_TRUE(task.validate(int_inputs(n, 50), out.decisions, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GroupKsetNative,
    ::testing::Combine(::testing::Values(4, 6), ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3),
                       ::testing::Range<std::uint64_t>(1, 4)));

TEST(GroupKset, PreconditionEnforced) {
  // ⌊n/x⌋ must exceed ⌊t/x⌋: ASM(7,6,3) has ⌊7/3⌋ = 2 = ⌊6/3⌋.
  EXPECT_THROW(group_kset_algorithm(7, 6, 3), ProtocolError);
}

TEST(SingleObjectConsensus, NativeRun) {
  SimulatedAlgorithm a = single_object_consensus_algorithm(4, 2, 4);
  Outcome out = run_direct(a, int_inputs(4, 9), lockstep(3));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(out.distinct_decisions().size(), 1u);
}

TEST(SingleObjectConsensus, RequiresWideObject) {
  EXPECT_THROW(single_object_consensus_algorithm(4, 2, 3), ProtocolError);
}

// --- renaming, native, wait-free ---

class RenamingNative
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RenamingNative, DistinctNamesWithin2nMinus1) {
  const int n = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  SimulatedAlgorithm a = snapshot_renaming_algorithm(n);
  ExecutionOptions o = lockstep(seed, 2'000'000);
  Outcome out = run_direct(a, *a.static_inputs, o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  RenamingCheck check{2 * n - 1};
  std::string why;
  EXPECT_TRUE(check.validate(out.decisions, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RenamingNative,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Range<std::uint64_t>(1, 9)));

TEST(RenamingNative, SurvivesCrashes) {
  // Wait-free: any number of crashes < n leaves survivors deciding.
  const int n = 5;
  SimulatedAlgorithm a = snapshot_renaming_algorithm(n);
  ExecutionOptions o = lockstep(77, 2'000'000);
  o.crashes = CrashPlan::hazard(0.01, n - 1, 99);
  Outcome out = run_direct(a, *a.static_inputs, o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  RenamingCheck check{2 * n - 1};
  std::string why;
  EXPECT_TRUE(check.validate(out.decisions, &why)) << why;
}

TEST(IdentityColored, NativeRun) {
  SimulatedAlgorithm a = identity_colored_algorithm(4, 1, 2);
  Outcome out = run_direct(a, *a.static_inputs, lockstep(5));
  ASSERT_FALSE(out.timed_out);
  for (int j = 0; j < 4; ++j) {
    ASSERT_TRUE(out.decisions[j].has_value());
    EXPECT_EQ(out.decisions[j]->as_int(), j + 1);
  }
}

// Algorithm structural validation.
TEST(SimulatedAlgorithmValidate, CatchesBadDeclarations) {
  SimulatedAlgorithm a = trivial_kset_algorithm(3, 1);
  a.xcons.push_back({"too-wide", {0, 1}});  // |ports| = 2 > x = 1
  EXPECT_THROW(a.validate(), ProtocolError);

  SimulatedAlgorithm b = group_kset_algorithm(4, 2, 2);
  b.xcons.push_back({"G0", {0}});  // duplicate name
  EXPECT_THROW(b.validate(), ProtocolError);

  SimulatedAlgorithm c = trivial_kset_algorithm(3, 1);
  c.static_inputs = std::vector<Value>{Value(1)};  // wrong size
  EXPECT_THROW(c.validate(), ProtocolError);

  SimulatedAlgorithm d = trivial_kset_algorithm(3, 1);
  d.programs.pop_back();  // wrong count
  EXPECT_THROW(d.validate(), ProtocolError);
}

}  // namespace
}  // namespace mpcn
