// Tests: src/core/x_compete (Figure 5) and src/core/x_safe_agreement
// (Figure 6), including the combination-enumeration helpers and the
// x-crash termination frontier of Theorem 2.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>

#include "src/common/errors.h"
#include "src/core/x_compete.h"
#include "src/core/x_safe_agreement.h"
#include "src/runtime/execution.h"

namespace mpcn {
namespace {

ExecutionOptions lockstep(std::uint64_t seed, std::uint64_t limit = 200000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kLockstep;
  o.seed = seed;
  o.step_limit = limit;
  return o;
}

std::vector<Value> int_inputs(int n) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(Value(i));
  return v;
}

// --- combination enumeration (SET_LIST) ---

TEST(Combinations, UnrankEnumeratesLexicographically) {
  // C(4,2) = 6 subsets in lexicographic order.
  const std::vector<std::vector<int>> expected{{0, 1}, {0, 2}, {0, 3},
                                               {1, 2}, {1, 3}, {2, 3}};
  for (std::int64_t r = 0; r < 6; ++r) {
    EXPECT_EQ(unrank_combination(4, 2, r),
              expected[static_cast<std::size_t>(r)]);
  }
}

TEST(Combinations, RankInvertsUnrank) {
  for (int n : {4, 6, 8}) {
    for (int x = 1; x <= n; ++x) {
      const std::int64_t m = binomial(n, x);
      for (std::int64_t r = 0; r < m; ++r) {
        EXPECT_EQ(rank_combination(n, unrank_combination(n, x, r)), r);
      }
    }
  }
}

TEST(Combinations, EverySubsetHasXMembers) {
  const std::int64_t m = binomial(7, 3);
  std::set<std::vector<int>> seen;
  for (std::int64_t r = 0; r < m; ++r) {
    std::vector<int> s = unrank_combination(7, 3, r);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    seen.insert(s);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), m);  // all distinct
}

// --- XCompete (Figure 5) ---

class XCompeteWinnerCount
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(XCompeteWinnerCount, AtMostXWinners) {
  const int x = std::get<0>(GetParam());
  const int contenders = std::get<1>(GetParam());
  const std::uint64_t seed = std::get<2>(GetParam());
  auto xc = std::make_shared<XCompete>(x);
  auto winners = std::make_shared<std::atomic<int>>(0);
  std::vector<Program> p;
  for (int i = 0; i < contenders; ++i) {
    p.push_back([xc, winners](ProcessContext& ctx) {
      if (xc->compete(ctx)) winners->fetch_add(1);
      ctx.decide(Value(0));
    });
  }
  Outcome out =
      run_execution(std::move(p), int_inputs(contenders), lockstep(seed));
  ASSERT_FALSE(out.timed_out);
  EXPECT_LE(winners->load(), x);
  if (contenders <= x) {
    // "if x or less processes invoke it, the ones that do not crash all
    //  obtain true"
    EXPECT_EQ(winners->load(), contenders);
  } else {
    EXPECT_EQ(winners->load(), x);  // exactly x with > x contenders
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, XCompeteWinnerCount,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 4, 6, 8),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(XCompete, NeedsPositiveX) { EXPECT_THROW(XCompete(0), ProtocolError); }

TEST(XCompete, CrashedContendersDoNotStealSlots) {
  // 3 contenders, x = 2, one crashes before competing: both survivors win.
  auto xc = std::make_shared<XCompete>(2);
  auto winners = std::make_shared<std::atomic<int>>(0);
  ExecutionOptions o = lockstep(9);
  o.crashes = CrashPlan::fixed({{0, 1}});  // p0 crashes at its first step
  std::vector<Program> p;
  for (int i = 0; i < 3; ++i) {
    p.push_back([xc, winners](ProcessContext& ctx) {
      if (xc->compete(ctx)) winners->fetch_add(1);
      ctx.decide(Value(0));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(3), o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(winners->load(), 2);
}

// --- XSafeAgreement (Figure 6) ---

class XSafeAgreementProperties
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(XSafeAgreementProperties, AgreementValidityTermination) {
  const int n = std::get<0>(GetParam());
  const int x = std::get<1>(GetParam());
  const std::uint64_t seed = std::get<2>(GetParam());
  if (x > n) GTEST_SKIP() << "x <= width required";
  auto xsa = std::make_shared<XSafeAgreement>(n, x);
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([xsa](ProcessContext& ctx) {
      xsa->propose(ctx, ctx.input());
      ctx.decide(xsa->decide(ctx));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), lockstep(seed));
  ASSERT_FALSE(out.timed_out);
  ASSERT_TRUE(out.all_correct_decided());
  std::set<Value> decided = out.distinct_decisions();
  ASSERT_EQ(decided.size(), 1u);
  const std::int64_t v = decided.begin()->as_int();
  EXPECT_GE(v, 0);
  EXPECT_LT(v, n);
  EXPECT_LE(xsa->owners_elected(), x);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, XSafeAgreementProperties,
    ::testing::Combine(::testing::Values(2, 4, 6), ::testing::Values(1, 2, 3),
                       ::testing::Range<std::uint64_t>(1, 8)));

TEST(XSafeAgreement, ParametersValidated) {
  EXPECT_THROW(XSafeAgreement(2, 3), ProtocolError);
  EXPECT_THROW(XSafeAgreement(2, 0), ProtocolError);
}

TEST(XSafeAgreement, OneShotDiscipline) {
  auto xsa = std::make_shared<XSafeAgreement>(2, 2);
  std::vector<Program> p{
      [xsa](ProcessContext& ctx) {
        EXPECT_THROW(xsa->decide(ctx), ProtocolError);
        xsa->propose(ctx, Value(1));
        EXPECT_THROW(xsa->propose(ctx, Value(2)), ProtocolError);
        ctx.decide(xsa->decide(ctx));
      },
      [xsa](ProcessContext& ctx) {
        xsa->propose(ctx, Value(5));
        ctx.decide(xsa->decide(ctx));
      }};
  Outcome out = run_execution(std::move(p), int_inputs(2), lockstep(1));
  EXPECT_FALSE(out.timed_out);
}

TEST(XSafeAgreement, LazyObjectsStayBounded) {
  // Owners only touch subsets containing themselves: the number of
  // consensus objects materialized is at most x * C(n-1, x-1).
  const int n = 6, x = 2;
  auto xsa = std::make_shared<XSafeAgreement>(n, x);
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([xsa](ProcessContext& ctx) {
      xsa->propose(ctx, ctx.input());
      ctx.decide(xsa->decide(ctx));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), lockstep(2));
  ASSERT_FALSE(out.timed_out);
  EXPECT_LE(xsa->consensus_objects_created(), x * binomial(n - 1, x - 1));
  EXPECT_GT(xsa->consensus_objects_created(), 0);
}

// --- Theorem 2's termination frontier ---
//
// With x = 2: ONE owner crashing mid-propose must NOT block deciders
// (x-1 = 1 crash tolerated)...
TEST(XSafeAgreement, ToleratesXMinus1OwnerCrashes) {
  const int n = 4, x = 2;
  auto xsa = std::make_shared<XSafeAgreement>(n, x);
  ExecutionOptions o = lockstep(3);
  // p0 starts proposing first (others held back), wins a T&S slot, then
  // crashes mid-scan. p1..p3 must still decide.
  o.crashes = CrashPlan::fixed({{0, 3}});
  std::vector<Program> p;
  p.push_back([xsa](ProcessContext& ctx) {
    xsa->propose(ctx, Value(0));
    ctx.decide(xsa->decide(ctx));
  });
  for (int i = 1; i < n; ++i) {
    p.push_back([xsa](ProcessContext& ctx) {
      for (int w = 0; w < 30; ++w) ctx.yield();
      xsa->propose(ctx, ctx.input());
      ctx.decide(xsa->decide(ctx));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), o);
  EXPECT_TRUE(out.crashed[0]);
  ASSERT_FALSE(out.timed_out) << "x-1 = 1 crash must be tolerated";
  EXPECT_TRUE(out.all_correct_decided());
  EXPECT_EQ(out.distinct_decisions().size(), 1u);
}

// ...while BOTH owners crashing mid-propose blocks everyone (x crashes
// exceed the tolerance).
TEST(XSafeAgreement, XOwnerCrashesBlock) {
  const int n = 4, x = 2;
  auto xsa = std::make_shared<XSafeAgreement>(n, x);
  ExecutionOptions o = lockstep(4, /*limit=*/30000);
  // p0 and p1 go first, each wins a T&S slot (2 owners), both crash
  // mid-scan before publishing. p2, p3 become non-owners and block.
  o.crashes = CrashPlan::fixed({{0, 3}, {1, 4}});
  std::vector<Program> p;
  for (int i = 0; i < 2; ++i) {
    p.push_back([xsa](ProcessContext& ctx) {
      xsa->propose(ctx, ctx.input());
      ctx.decide(xsa->decide(ctx));
    });
  }
  for (int i = 2; i < n; ++i) {
    p.push_back([xsa](ProcessContext& ctx) {
      for (int w = 0; w < 60; ++w) ctx.yield();
      xsa->propose(ctx, ctx.input());
      ctx.decide(xsa->decide(ctx));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), o);
  EXPECT_TRUE(out.crashed[0]);
  EXPECT_TRUE(out.crashed[1]);
  if (xsa->owners_elected() == 2 && !xsa->has_decided_value()) {
    // Both crashed simulators were the owners: deciders must block.
    EXPECT_TRUE(out.timed_out);
    EXPECT_FALSE(out.decisions[2].has_value());
    EXPECT_FALSE(out.decisions[3].has_value());
  }
}

TEST(XSafeAgreement, XEquals1DegeneratesButWorks) {
  // x = 1: single owner; failure-free it must behave like safe agreement.
  const int n = 3;
  auto xsa = std::make_shared<XSafeAgreement>(n, 1);
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([xsa](ProcessContext& ctx) {
      xsa->propose(ctx, ctx.input());
      ctx.decide(xsa->decide(ctx));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), lockstep(5));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(out.distinct_decisions().size(), 1u);
}

TEST(XSafeAgreement, FreeModeStress) {
  for (std::uint64_t round = 0; round < 10; ++round) {
    const int n = 6, x = 3;
    auto xsa = std::make_shared<XSafeAgreement>(n, x);
    std::vector<Program> p;
    for (int i = 0; i < n; ++i) {
      p.push_back([xsa](ProcessContext& ctx) {
        xsa->propose(ctx, ctx.input());
        ctx.decide(xsa->decide(ctx));
      });
    }
    ExecutionOptions o;
    o.mode = SchedulerMode::kFree;
    o.step_limit = 10'000'000;
    Outcome out = run_execution(std::move(p), int_inputs(n), o);
    ASSERT_FALSE(out.timed_out);
    EXPECT_EQ(out.distinct_decisions().size(), 1u);
    EXPECT_LE(xsa->owners_elected(), x);
  }
}

}  // namespace
}  // namespace mpcn
