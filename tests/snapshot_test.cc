// Unit + property tests: src/registers, src/snapshot.
//
// The property suites run the Afek construction under many seeded
// lock-step schedules and check every recorded history against the
// snapshot sequential specification with the Wing&Gong checker.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/errors.h"
#include "src/history/history.h"
#include "src/history/linearizability.h"
#include "src/registers/atomic_register.h"
#include "src/runtime/execution.h"
#include "src/snapshot/afek_snapshot.h"
#include "src/snapshot/primitive_snapshot.h"
#include "src/snapshot/seqlock_snapshot.h"

namespace mpcn {
namespace {

ExecutionOptions lockstep(std::uint64_t seed, std::uint64_t limit = 300000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kLockstep;
  o.seed = seed;
  o.step_limit = limit;
  return o;
}

std::vector<Value> int_inputs(int n) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(Value(i));
  return v;
}

TEST(AtomicRegister, InitialValueIsNil) {
  AtomicRegister r;
  EXPECT_TRUE(r.peek().is_nil());
}

TEST(AtomicRegister, WriteThenRead) {
  auto reg = std::make_shared<AtomicRegister>();
  std::vector<Program> p{[reg](ProcessContext& ctx) {
    reg->write(ctx, Value(9));
    EXPECT_EQ(reg->read(ctx).as_int(), 9);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(1));
}

TEST(RegisterArray, IndependentCells) {
  auto arr = std::make_shared<RegisterArray>(3);
  std::vector<Program> p{[arr](ProcessContext& ctx) {
    arr->write(ctx, 0, Value(1));
    arr->write(ctx, 2, Value(3));
    EXPECT_EQ(arr->read(ctx, 0).as_int(), 1);
    EXPECT_TRUE(arr->read(ctx, 1).is_nil());
    EXPECT_EQ(arr->read(ctx, 2).as_int(), 3);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(2));
}

// --- PrimitiveSnapshot ---

TEST(PrimitiveSnapshot, OwnershipEnforced) {
  auto snap = std::make_shared<PrimitiveSnapshot>(2);
  std::vector<Program> p{
      [snap](ProcessContext& ctx) {
        EXPECT_THROW(snap->write(ctx, 1, Value(5)), ProtocolError);
        snap->write(ctx, 0, Value(5));
        ctx.decide(Value(0));
      },
      [](ProcessContext& ctx) { ctx.decide(Value(0)); }};
  run_execution(std::move(p), int_inputs(2), lockstep(3));
}

TEST(PrimitiveSnapshot, OwnershipCheckCanBeDisabled) {
  auto snap = std::make_shared<PrimitiveSnapshot>(2, false);
  std::vector<Program> p{[snap](ProcessContext& ctx) {
    snap->write(ctx, 1, Value(5));
    EXPECT_EQ(snap->snapshot(ctx)[1].as_int(), 5);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(4));
}

TEST(PrimitiveSnapshot, IndexRangeChecked) {
  auto snap = std::make_shared<PrimitiveSnapshot>(2, false);
  std::vector<Program> p{[snap](ProcessContext& ctx) {
    EXPECT_THROW(snap->write(ctx, 2, Value(1)), ProtocolError);
    EXPECT_THROW(snap->write(ctx, -1, Value(1)), ProtocolError);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(5));
}

TEST(PrimitiveSnapshot, SnapshotSeesAllPriorWrites) {
  auto snap = std::make_shared<PrimitiveSnapshot>(3, false);
  std::vector<Program> p{[snap](ProcessContext& ctx) {
    snap->write(ctx, 0, Value(10));
    snap->write(ctx, 1, Value(11));
    snap->write(ctx, 2, Value(12));
    const std::vector<Value> s = snap->snapshot(ctx);
    EXPECT_EQ(s[0].as_int(), 10);
    EXPECT_EQ(s[1].as_int(), 11);
    EXPECT_EQ(s[2].as_int(), 12);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(6));
}

// --- shared harness for concurrent snapshot histories ---

// Runs `writers` processes doing `rounds` writes each plus one scanner
// process doing `rounds` snapshots, against the given snapshot object;
// records a history and checks linearizability.
void run_snapshot_history_check(std::shared_ptr<SnapshotObject> snap,
                                int writers, int rounds, std::uint64_t seed) {
  auto rec = std::make_shared<HistoryRecorder>();
  const int n = writers + 1;
  std::vector<Program> p;
  for (int w = 0; w < writers; ++w) {
    p.push_back([snap, rec, w, rounds](ProcessContext& ctx) {
      for (int r = 0; r < rounds; ++r) {
        const Value v = Value(w * 1000 + r);
        const std::uint64_t inv = ctx.backend().controller().steps();
        snap->write(ctx, w, v);
        const std::uint64_t res = ctx.backend().controller().steps();
        rec->record(Event{ctx.tid(), "write", Value::pair(Value(w), v),
                          Value::nil(), inv, res});
      }
      ctx.decide(Value(0));
    });
  }
  p.push_back([snap, rec, rounds](ProcessContext& ctx) {
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t inv = ctx.backend().controller().steps();
      const std::vector<Value> view = snap->snapshot(ctx);
      const std::uint64_t res = ctx.backend().controller().steps();
      rec->record(Event{ctx.tid(), "snapshot", Value::nil(),
                        Value(Value::List(view.begin(), view.end())), inv,
                        res});
    }
    ctx.decide(Value(0));
  });
  Outcome out = run_execution(std::move(p), int_inputs(n), lockstep(seed));
  ASSERT_FALSE(out.timed_out);
  SnapshotSpec spec(writers);
  EXPECT_TRUE(is_linearizable(rec->events(), spec))
      << "history not linearizable, seed " << seed;
}

class AfekSnapshotLinearizability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AfekSnapshotLinearizability, HistoryIsLinearizable) {
  const std::uint64_t seed = GetParam();
  auto snap = std::make_shared<AfekSnapshot>(3, /*check_ownership=*/false);
  run_snapshot_history_check(snap, 3, 4, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AfekSnapshotLinearizability,
                         ::testing::Range<std::uint64_t>(1, 41));

class PrimitiveSnapshotLinearizability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimitiveSnapshotLinearizability, HistoryIsLinearizable) {
  const std::uint64_t seed = GetParam();
  auto snap =
      std::make_shared<PrimitiveSnapshot>(3, /*check_ownership=*/false);
  run_snapshot_history_check(snap, 3, 5, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveSnapshotLinearizability,
                         ::testing::Range<std::uint64_t>(1, 21));

class RwLockSnapshotLinearizability
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RwLockSnapshotLinearizability, HistoryIsLinearizable) {
  const std::uint64_t seed = GetParam();
  auto snap = std::make_shared<RwLockSnapshot>(3, /*check_ownership=*/false);
  run_snapshot_history_check(snap, 3, 5, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwLockSnapshotLinearizability,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Afek-specific behaviour ---

TEST(AfekSnapshot, SequentialWriteSnapshotAgree) {
  auto snap = std::make_shared<AfekSnapshot>(2, false);
  std::vector<Program> p{[snap](ProcessContext& ctx) {
    snap->write(ctx, 0, Value(1));
    snap->write(ctx, 1, Value(2));
    auto s = snap->snapshot(ctx);
    EXPECT_EQ(s[0].as_int(), 1);
    EXPECT_EQ(s[1].as_int(), 2);
    snap->write(ctx, 0, Value(3));
    s = snap->snapshot(ctx);
    EXPECT_EQ(s[0].as_int(), 3);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(7));
}

TEST(AfekSnapshot, OwnershipEnforced) {
  auto snap = std::make_shared<AfekSnapshot>(2, true);
  std::vector<Program> p{
      [snap](ProcessContext& ctx) {
        EXPECT_THROW(snap->write(ctx, 1, Value(1)), ProtocolError);
        ctx.decide(Value(0));
      },
      [](ProcessContext& ctx) { ctx.decide(Value(0)); }};
  run_execution(std::move(p), int_inputs(2), lockstep(8));
}

TEST(AfekSnapshot, BorrowedScansHappenUnderContention) {
  // With continuous writers, some scans must terminate by borrowing an
  // embedded view — that's the helping mechanism in action.
  auto snap = std::make_shared<AfekSnapshot>(2, /*check_ownership=*/false);
  std::vector<Program> p;
  for (int w = 0; w < 2; ++w) {
    p.push_back([snap, w](ProcessContext& ctx) {
      for (int r = 0; r < 60; ++r) snap->write(ctx, w, Value(r));
      ctx.decide(Value(0));
    });
  }
  p.push_back([snap](ProcessContext& ctx) {
    for (int r = 0; r < 30; ++r) (void)snap->snapshot(ctx);
    ctx.decide(Value(0));
  });
  Outcome out = run_execution(std::move(p), int_inputs(3), lockstep(9));
  ASSERT_FALSE(out.timed_out);
  EXPECT_GT(snap->total_collects(), 0u);
  // Not every seed forces borrowing, but the counters must be coherent.
  EXPECT_LE(snap->borrowed_scans(), snap->total_collects());
}

TEST(AfekSnapshot, WaitFreeBoundOnCollects) {
  // A single scan among n writers needs at most n+2 collects. Run many
  // scans under heavy write contention and check the average is small.
  const int kWriters = 3;
  auto snap =
      std::make_shared<AfekSnapshot>(kWriters + 1, /*check_ownership=*/false);
  const int kScans = 20;
  std::vector<Program> p;
  for (int w = 0; w < kWriters; ++w) {
    p.push_back([snap, w](ProcessContext& ctx) {
      for (int r = 0; r < 200; ++r) snap->write(ctx, w, Value(r));
      ctx.decide(Value(0));
    });
  }
  p.push_back([snap](ProcessContext& ctx) {
    for (int r = 0; r < kScans; ++r) (void)snap->snapshot(ctx);
    ctx.decide(Value(0));
  });
  Outcome out = run_execution(std::move(p), int_inputs(kWriters + 1),
                              lockstep(10, 2'000'000));
  ASSERT_FALSE(out.timed_out);
  // Each embedded scan inside a write also counts; the global bound is
  // collects <= (ops) * (n+2).
  const std::uint64_t ops = kWriters * 200 + kScans;
  EXPECT_LE(snap->total_collects(), ops * (kWriters + 1 + 2));
}

// --- counter pinning: the COW payload representation must not change the
// --- algorithm's step structure ---

// A writer running alone never observes movement: every scan is a clean
// double collect. Exact counter arithmetic pins that write = scan + read
// + write and snapshot = scan, with no extra collects hidden anywhere.
TEST(AfekSnapshot, CountersPinnedSequential) {
  const int kWrites = 6, kScans = 5;
  auto snap = std::make_shared<AfekSnapshot>(4, /*check_ownership=*/false);
  std::vector<Program> p{[snap](ProcessContext& ctx) {
    for (int r = 0; r < kWrites; ++r) snap->write(ctx, 0, Value(r));
    for (int r = 0; r < kScans; ++r) (void)snap->snapshot(ctx);
    ctx.decide(Value(0));
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, lockstep(1));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(snap->total_collects(), 2u * (kWrites + kScans));
  EXPECT_EQ(snap->borrowed_scans(), 0u);
}

// Under a seeded lock-step schedule the whole interleaving is a pure
// function of the seed, so the collect/borrow counters are exact. These
// values were measured against the pre-COW deep-copy Value as well: the
// representation change moved zero collects and zero borrows.
TEST(AfekSnapshot, CountersPinnedSeededLockstep) {
  auto snap = std::make_shared<AfekSnapshot>(3, /*check_ownership=*/false);
  std::vector<Program> p;
  for (int w = 0; w < 2; ++w) {
    p.push_back([snap, w](ProcessContext& ctx) {
      for (int r = 0; r < 25; ++r) snap->write(ctx, w, Value(r));
      ctx.decide(Value(0));
    });
  }
  p.push_back([snap](ProcessContext& ctx) {
    for (int r = 0; r < 10; ++r) (void)snap->snapshot(ctx);
    ctx.decide(Value(0));
  });
  Outcome out = run_execution(std::move(p), int_inputs(3), lockstep(9));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(snap->total_collects(), 146u);
  EXPECT_EQ(snap->borrowed_scans(), 5u);
}

// --- free mode stress (real concurrency) ---

TEST(AfekSnapshot, FreeModeStress) {
  auto snap = std::make_shared<AfekSnapshot>(4, /*check_ownership=*/false);
  std::vector<Program> p;
  for (int w = 0; w < 4; ++w) {
    p.push_back([snap, w](ProcessContext& ctx) {
      for (int r = 0; r < 100; ++r) {
        snap->write(ctx, w, Value(w * 1000 + r));
        const std::vector<Value> s = snap->snapshot(ctx);
        // Own entry must never run backwards.
        if (!s[static_cast<std::size_t>(w)].is_nil()) {
          EXPECT_LE(s[static_cast<std::size_t>(w)].as_int(), w * 1000 + r);
          EXPECT_GE(s[static_cast<std::size_t>(w)].as_int(), w * 1000);
        }
      }
      ctx.decide(Value(0));
    });
  }
  ExecutionOptions o;
  o.mode = SchedulerMode::kFree;
  o.step_limit = 50'000'000;
  Outcome out = run_execution(std::move(p), int_inputs(4), o);
  EXPECT_EQ(out.decided_count(), 4);
}

}  // namespace
}  // namespace mpcn
