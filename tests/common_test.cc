// Unit tests: src/common — Value semantics, ids arithmetic, RNG.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/value.h"

namespace mpcn {
namespace {

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v, Value::nil());
}

TEST(Value, IntRoundTrip) {
  Value v(42);
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
}

TEST(Value, StringRoundTrip) {
  Value v("hello");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(Value, ListRoundTrip) {
  Value v = Value::list({Value(1), Value("x"), Value::nil()});
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0).as_int(), 1);
  EXPECT_EQ(v.at(1).as_string(), "x");
  EXPECT_TRUE(v.at(2).is_nil());
}

TEST(Value, PairHelper) {
  Value p = Value::pair(Value(7), Value(9));
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0).as_int(), 7);
  EXPECT_EQ(p.at(1).as_int(), 9);
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::list({Value(1), Value(2)}), Value::list({Value(1), Value(2)}));
  EXPECT_NE(Value::list({Value(1)}), Value::list({Value(2)}));
  EXPECT_NE(Value(1), Value("1"));
}

TEST(Value, TotalOrderAcrossKinds) {
  // nil < int < string < list
  EXPECT_LT(Value::nil(), Value(0));
  EXPECT_LT(Value(5), Value("a"));
  EXPECT_LT(Value("z"), Value::list({}));
}

TEST(Value, IntOrder) {
  EXPECT_LT(Value(-3), Value(2));
  EXPECT_FALSE(Value(2) < Value(2));
}

TEST(Value, ListLexicographicOrder) {
  EXPECT_LT(Value::list({Value(1)}), Value::list({Value(1), Value(0)}));
  EXPECT_LT(Value::list({Value(1), Value(2)}), Value::list({Value(2)}));
}

TEST(Value, HashConsistentWithEquality) {
  Value a = Value::list({Value(1), Value("q")});
  Value b = Value::list({Value(1), Value("q")});
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<Value> s;
  s.insert(a);
  EXPECT_TRUE(s.count(b));
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value::nil().to_string(), "nil");
  EXPECT_EQ(Value(3).to_string(), "3");
  EXPECT_EQ(Value("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Value::list({Value(1), Value(2)}).to_string(), "[1, 2]");
}

TEST(Value, AccessorThrowsOnWrongKind) {
  EXPECT_THROW(Value(1).as_string(), std::bad_variant_access);
  EXPECT_THROW(Value("s").as_int(), std::bad_variant_access);
}

TEST(Ids, FloorDivMatchesPaper) {
  EXPECT_EQ(floor_div(8, 1), 8);
  EXPECT_EQ(floor_div(8, 2), 4);
  EXPECT_EQ(floor_div(8, 3), 2);
  EXPECT_EQ(floor_div(8, 4), 2);
  EXPECT_EQ(floor_div(8, 5), 1);
  EXPECT_EQ(floor_div(8, 8), 1);
  EXPECT_EQ(floor_div(8, 9), 0);
}

TEST(Ids, FloorDivRejectsBadInput) {
  EXPECT_THROW(floor_div(-1, 2), std::invalid_argument);
  EXPECT_THROW(floor_div(3, 0), std::invalid_argument);
}

TEST(Ids, Binomial) {
  EXPECT_EQ(binomial(4, 2), 6);
  EXPECT_EQ(binomial(10, 3), 120);
  EXPECT_EQ(binomial(5, 0), 1);
  EXPECT_EQ(binomial(5, 5), 1);
  EXPECT_EQ(binomial(3, 4), 0);
}

TEST(Ids, ThreadIdToString) {
  EXPECT_EQ((ThreadId{3, 0}).to_string(), "q3");
  EXPECT_EQ((ThreadId{3, 2}).to_string(), "q3.1");
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.index(1000), b.index(1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.index(1 << 30) == b.index(1 << 30)) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, IndexInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.index(13), 13u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.range(2, 5));
  EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5}));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitMixDistinctStreams) {
  std::uint64_t s = 99;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mpcn
