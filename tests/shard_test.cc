// Tests: src/dist/shard — the cross-process shard coordinator.
//
// The load-bearing contracts:
//   * a sharded run's merged Report is byte-identical (timing excluded)
//     to the in-process BatchRunner on the same grid — the paper-scale
//     equivalence sweeps must not depend on WHERE cells ran;
//   * a worker that dies with a cell in flight gets its cells requeued
//     onto survivors, and the merged Report is still identical;
//   * misbehaving workers (garbage emitters, hangs, exec failures)
//     degrade the run to in-process execution instead of losing cells;
//   * the exec-mode path through the real `mpcn worker` binary behaves
//     exactly like the fork-mode path.
#include <gtest/gtest.h>

#include "src/common/errors.h"
#include "src/dist/shard.h"
#include "src/experiment/batch_runner.h"
#include "src/experiment/experiment.h"
#include "src/tasks/algorithms.h"

namespace mpcn {
namespace {

// A 6-cell seeded grid: deterministic, a few hundred steps per cell.
Experiment small_grid() {
  Experiment e = Experiment::named("snapshot_churn", ModelSpec{3, 0, 1});
  e.direct()
      .inputs({Value(10), Value(11), Value(12)})
      .seeds(1, 6);
  return e;
}

std::string in_process_dump(const Experiment& e) {
  return BatchRunner().run(e.cells()).to_json(false).dump();
}

TEST(Shard, ForkModeMatchesInProcessByteForByte) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
  EXPECT_TRUE(sharded.all_ok());
}

TEST(Shard, SingleWorkerAndMoreWorkersThanCells) {
  const Experiment e = small_grid();
  const std::string expected = in_process_dump(e);
  for (int shards : {1, 16}) {
    ShardOptions options;
    options.shards = shards;
    EXPECT_EQ(run_sharded(e.cells(), options).to_json(false).dump(),
              expected)
        << "shards = " << shards;
  }
}

// The kill-one-worker contract: worker 0 dies upon RECEIVING its second
// cell (first one answered, second one lost in flight). The coordinator
// must requeue the lost cell onto worker 1 and still produce the exact
// in-process report.
TEST(Shard, DeadWorkerCellsAreRequeuedOntoSurvivors) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_max_cells = {2, 0};
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

TEST(Shard, WorkerDyingOnFirstCellStillCompletes) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 3;
  options.worker_max_cells = {1, 1, 0};  // two workers never answer at all
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

TEST(Shard, AllWorkersDeadFallsBackInProcess) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_max_cells = {1, 1};  // nobody survives
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

// A worker that echoes our own cell lines back (cat) is a protocol
// violator: it must be written off and the run must degrade, not hang
// or corrupt the report.
TEST(Shard, GarbageEmittingWorkerIsWrittenOff) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_argv = {"/bin/cat"};
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

// A hung worker (sleep: reads nothing, writes nothing) trips the
// watchdog once its cell overruns wall_limit + grace; its cell is
// requeued. With no survivors the run degrades to in-process execution.
TEST(Shard, HungWorkerTripsWatchdog) {
  Experiment e = small_grid();
  // The grid's cells finish in milliseconds; a tight wall_limit keeps
  // the watchdog deadline (wall_limit + grace) test-sized.
  e.wall_limit(std::chrono::milliseconds(200));
  ShardOptions options;
  options.shards = 2;
  options.worker_argv = {"/bin/sleep", "120"};
  options.watchdog_grace = std::chrono::milliseconds(250);
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

TEST(Shard, ExecFailureDegradesGracefully) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_argv = {"/no/such/binary"};
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

#ifdef MPCN_CLI_BIN
// The production path: real `mpcn worker` subprocesses via exec.
TEST(Shard, ExecModeThroughRealCliBinary) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_argv = {MPCN_CLI_BIN, "worker"};
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

// Exec-mode fault injection: --max-cells rides the worker argv.
TEST(Shard, ExecModeDeadWorkerRequeues) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_argv = {MPCN_CLI_BIN, "worker"};
  options.worker_max_cells = {2, 0};
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}
#endif

// Churn hardening: a crash-looping worker slot is respawned (with its
// fault-injection quota inherited) and keeps serving cells. The pin:
// with the in-process fallback DISABLED, only respawned workers can
// finish the grid — success proves the respawn path served every cell.
TEST(Shard, RespawnedSlotServesTheWholeGrid) {
  const Experiment e = small_grid();  // 6 cells
  ShardOptions options;
  options.shards = 1;
  // The worker dies upon RECEIVING its second cell: one cell per life.
  options.worker_max_cells = {2};
  options.max_respawns = 5;  // initial + 5 respawns = 6 lives = 6 cells
  options.respawn_backoff = std::chrono::milliseconds(1);
  options.fallback_in_process = false;
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

// A drained pool (everyone dead, respawn budgets spent) with the
// fallback disabled fails cleanly instead of silently degrading.
TEST(Shard, DrainedPoolWithFallbackDisabledThrows) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_max_cells = {1, 1};  // nobody ever answers
  options.max_respawns = 1;
  options.respawn_backoff = std::chrono::milliseconds(1);
  options.fallback_in_process = false;
  EXPECT_THROW(run_sharded(e.cells(), options), ProtocolError);
}

// max_respawns = 0 restores the pre-respawn behavior: written-off
// workers stay dead and the run degrades straight to in-process.
TEST(Shard, RespawnDisabledFallsBackInProcess) {
  const Experiment e = small_grid();
  ShardOptions options;
  options.shards = 2;
  options.worker_max_cells = {1, 1};
  options.max_respawns = 0;
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

TEST(Shard, EmptyGridYieldsEmptyReport) {
  ShardOptions options;
  options.shards = 2;
  const Report r = run_sharded({}, options);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.title, "batch");
}

TEST(Shard, RejectsAnonymousCellsUpFront) {
  Experiment anon = Experiment::of(trivial_kset_algorithm(3, 1));
  anon.direct().inputs({Value(0), Value(1), Value(2)});
  ShardOptions options;
  options.shards = 2;
  EXPECT_THROW(run_sharded(anon.cells(), options), ProtocolError);
}

TEST(Shard, RejectsZeroShards) {
  ShardOptions options;
  options.shards = 0;
  EXPECT_THROW(run_sharded({}, options), ProtocolError);
}

// The BatchRunner backend switch: shards > 0 routes through the
// coordinator, and Experiment::run_all picks it up transparently.
TEST(Shard, BatchRunnerShardBackendMatchesInProcess) {
  const Experiment e = small_grid();
  BatchOptions batch;
  batch.shards = 2;
  const Report sharded = e.run_all(batch);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
}

// Sharding composes with the grid axes: a mem x seed grid through the
// simulation engine, distributed, still matches in-process bytes.
TEST(Shard, SimulatedMemGridMatchesInProcess) {
  Experiment e = Experiment::named("snapshot_churn", ModelSpec{3, 0, 1});
  e.direct()
      .inputs({Value(0), Value(1), Value(2)})
      .seeds(1, 2)
      .mems({MemKind::kPrimitive, MemKind::kAfek});
  ShardOptions options;
  options.shards = 3;
  const Report sharded = run_sharded(e.cells(), options);
  EXPECT_EQ(sharded.to_json(false).dump(), in_process_dump(e));
  EXPECT_EQ(sharded.records.size(), 4u);
}

}  // namespace
}  // namespace mpcn
