// Unit tests: src/runtime — step controllers, crash plans, contexts,
// cooperative mutex, shared world, execution harness.
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/errors.h"
#include "src/registers/atomic_register.h"
#include "src/runtime/cooperative_mutex.h"
#include "src/runtime/execution.h"
#include "src/runtime/shared_world.h"

namespace mpcn {
namespace {

ExecutionOptions lockstep(std::uint64_t seed, std::uint64_t limit = 200000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kLockstep;
  o.seed = seed;
  o.step_limit = limit;
  return o;
}

ExecutionOptions free_mode(std::uint64_t limit = 2'000'000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kFree;
  o.step_limit = limit;
  return o;
}

std::vector<Value> int_inputs(int n) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(Value(i));
  return v;
}

TEST(Execution, SingleProcessDecides) {
  std::vector<Program> p{[](ProcessContext& ctx) { ctx.decide(Value(7)); }};
  Outcome out = run_execution(std::move(p), {Value(0)}, lockstep(1));
  ASSERT_TRUE(out.decisions[0].has_value());
  EXPECT_EQ(out.decisions[0]->as_int(), 7);
  EXPECT_FALSE(out.timed_out);
}

TEST(Execution, InputsAreDelivered) {
  std::vector<Program> p;
  for (int i = 0; i < 4; ++i) {
    p.push_back([](ProcessContext& ctx) { ctx.decide(ctx.input()); });
  }
  Outcome out = run_execution(std::move(p), int_inputs(4), lockstep(2));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(out.decisions[i].has_value());
    EXPECT_EQ(out.decisions[i]->as_int(), i);
  }
}

TEST(Execution, RunIsSingleUse) {
  Execution e({[](ProcessContext& c) { c.decide(Value(1)); }}, {Value(0)},
              lockstep(1));
  e.run();
  EXPECT_THROW(e.run(), ProtocolError);
}

TEST(Execution, InputSizeMismatchThrows) {
  EXPECT_THROW(
      Execution({[](ProcessContext&) {}}, std::vector<Value>{}, lockstep(1)),
      ProtocolError);
}

TEST(Execution, ProtocolErrorsPropagate) {
  std::vector<Program> p{
      [](ProcessContext&) { throw ProtocolError("boom"); }};
  Execution e(std::move(p), {Value(0)}, lockstep(1));
  EXPECT_THROW(e.run(), ProtocolError);
}

TEST(Execution, StepLimitFlagsTimeout) {
  // A process that spins forever: the run must end, flagged timed_out.
  std::vector<Program> p{[](ProcessContext& ctx) {
    for (;;) ctx.yield();
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, lockstep(3, 500));
  EXPECT_TRUE(out.timed_out);
  EXPECT_FALSE(out.decisions[0].has_value());
}

TEST(Execution, StopsWhenAllCorrectDecided) {
  // One process decides, the other spins; once p0 decides and p1 is
  // crashed, the run stops without burning the step budget.
  ExecutionOptions o = lockstep(4, 1'000'000);
  o.crashes = CrashPlan::fixed({{1, 5}});
  std::vector<Program> p{
      [](ProcessContext& ctx) {
        for (int i = 0; i < 50; ++i) ctx.yield();
        ctx.decide(Value(1));
      },
      [](ProcessContext& ctx) {
        for (;;) ctx.yield();
      }};
  Outcome out = run_execution(std::move(p), int_inputs(2), o);
  EXPECT_FALSE(out.timed_out);
  EXPECT_TRUE(out.decisions[0].has_value());
  EXPECT_TRUE(out.crashed[1]);
  EXPECT_LT(out.steps, 10'000u);
}

TEST(Execution, WallLimitFlagsTimeout) {
  // Free mode, huge step budget: only the wall clock can end the run.
  // Pins the event-driven monitor (no 20 ms polling loop to fall back on).
  ExecutionOptions o = free_mode(100'000'000'000ull);
  o.wall_limit = std::chrono::milliseconds(80);
  std::vector<Program> p{[](ProcessContext& ctx) {
    for (;;) ctx.yield();
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, o);
  EXPECT_TRUE(out.timed_out);
  EXPECT_FALSE(out.decisions[0].has_value());
}

// --- crash plans ---

TEST(CrashPlan, FixedCrashStopsProcessAtExactStep) {
  std::atomic<int> steps_taken{0};
  ExecutionOptions o = lockstep(5);
  o.crashes = CrashPlan::fixed({{0, 4}});  // crash at own step 4
  std::vector<Program> p{[&steps_taken](ProcessContext& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.yield();
      steps_taken.fetch_add(1);
    }
    ctx.decide(Value(0));
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, o);
  EXPECT_TRUE(out.crashed[0]);
  EXPECT_FALSE(out.decisions[0].has_value());
  // The 4th step throws before executing, so exactly 3 completed.
  EXPECT_EQ(steps_taken.load(), 3);
}

TEST(CrashPlan, NoneNeverCrashes) {
  CrashManager m(3, CrashPlan::none());
  for (int s = 0; s < 1000; ++s) {
    EXPECT_FALSE(m.on_step(ThreadId{s % 3, 0}));
  }
  EXPECT_EQ(m.crash_count(), 0);
}

TEST(CrashPlan, HazardRespectsBudget) {
  CrashManager m(8, CrashPlan::hazard(0.5, 3, 42));
  for (int s = 0; s < 10000; ++s) m.on_step(ThreadId{s % 8, 0});
  EXPECT_LE(m.crash_count(), 3);
  EXPECT_GT(m.crash_count(), 0);
}

TEST(CrashPlan, HazardEligibilityRestricts) {
  CrashManager m(4, CrashPlan::hazard(1.0, 4, 7, {2}));
  for (int s = 0; s < 100; ++s) m.on_step(ThreadId{s % 4, 0});
  EXPECT_TRUE(m.is_crashed(2));
  EXPECT_FALSE(m.is_crashed(0));
  EXPECT_FALSE(m.is_crashed(1));
  EXPECT_FALSE(m.is_crashed(3));
}

TEST(CrashPlan, CrashNowIsSticky) {
  CrashManager m(2, CrashPlan::none());
  m.crash_now(1);
  EXPECT_TRUE(m.is_crashed(1));
  EXPECT_TRUE(m.on_step(ThreadId{1, 0}));  // crashed processes stay crashed
  EXPECT_EQ(m.crash_count(), 1);
}

TEST(CrashPlan, BudgetReporting) {
  EXPECT_EQ(CrashPlan::none().budget(5), 0);
  EXPECT_EQ(CrashPlan::fixed({{0, 1}, {1, 1}}).budget(5), 2);
  EXPECT_EQ(CrashPlan::hazard(0.1, 3, 1).budget(5), 3);
  EXPECT_EQ(CrashPlan::hazard(0.1, 9, 1).budget(5), 5);
}

// --- determinism of the lock-step schedule ---

TEST(Lockstep, SameSeedSameInterleaving) {
  // Two processes append their ids to a shared register list; the final
  // list is a trace of the schedule. Same seed => same trace.
  auto run_trace = [](std::uint64_t seed) {
    auto reg = std::make_shared<AtomicRegister>(Value(Value::List{}));
    std::vector<Program> p;
    for (int i = 0; i < 3; ++i) {
      p.push_back([reg, i](ProcessContext& ctx) {
        for (int r = 0; r < 10; ++r) {
          Value cur = reg->read(ctx);
          Value::List l = cur.as_list();
          l.push_back(Value(i));
          reg->write(ctx, Value(std::move(l)));
        }
        ctx.decide(Value(0));
      });
    }
    Outcome out = run_execution(std::move(p), int_inputs(3), lockstep(seed));
    EXPECT_FALSE(out.timed_out);
    return reg->peek().to_string();
  };
  EXPECT_EQ(run_trace(11), run_trace(11));
  EXPECT_EQ(run_trace(12), run_trace(12));
  // Different seeds virtually always give different traces for 30 steps.
  EXPECT_NE(run_trace(11), run_trace(12));
}

TEST(Lockstep, StepsAreSerialized) {
  // Under lock-step, read-modify-write sequences of distinct processes
  // interleave but each *step* is exclusive; a per-step counter collision
  // detector must never fire.
  auto busy = std::make_shared<std::atomic<int>>(0);
  auto collisions = std::make_shared<std::atomic<int>>(0);
  std::vector<Program> p;
  for (int i = 0; i < 4; ++i) {
    p.push_back([busy, collisions](ProcessContext& ctx) {
      for (int r = 0; r < 25; ++r) {
        auto g = ctx.step();
        if (busy->fetch_add(1) != 0) collisions->fetch_add(1);
        busy->fetch_sub(1);
      }
      ctx.decide(Value(0));
    });
  }
  run_execution(std::move(p), int_inputs(4), lockstep(6));
  EXPECT_EQ(collisions->load(), 0);
}

// --- fork / cancel / crash domains ---

TEST(Fork, ChildSharesCrashDomain) {
  // Parent forks a child; the parent's pid crashes; both must stop.
  ExecutionOptions o = lockstep(7);
  o.crashes = CrashPlan::fixed({{0, 10}});
  auto child_stopped_cleanly = std::make_shared<std::atomic<bool>>(false);
  std::vector<Program> p{[&](ProcessContext& ctx) {
    ChildHandle h = ctx.fork([&](ProcessContext& cctx) {
      try {
        for (;;) cctx.yield();
      } catch (const ProcessCrashed&) {
        child_stopped_cleanly->store(true);
        throw;
      }
    });
    for (;;) ctx.yield();
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, o);
  EXPECT_TRUE(out.crashed[0]);
  EXPECT_TRUE(child_stopped_cleanly->load());
}

TEST(Fork, JoinReturnsAfterChildFinishes) {
  std::vector<Program> p{[](ProcessContext& ctx) {
    auto flag = std::make_shared<std::atomic<bool>>(false);
    ChildHandle h = ctx.fork([flag](ProcessContext& cctx) {
      for (int i = 0; i < 5; ++i) cctx.yield();
      flag->store(true);
    });
    h.join(ctx);
    EXPECT_TRUE(flag->load());
    ctx.decide(Value(1));
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, lockstep(8));
  EXPECT_TRUE(out.decisions[0].has_value());
}

TEST(Fork, CancelUnblocksSpinningChild) {
  std::vector<Program> p{[](ProcessContext& ctx) {
    ChildHandle h = ctx.fork([](ProcessContext& cctx) {
      for (;;) cctx.yield();  // spins until cancelled
    });
    for (int i = 0; i < 20; ++i) ctx.yield();
    h.cancel();
    h.join(ctx);
    ctx.decide(Value(1));
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, lockstep(9));
  EXPECT_TRUE(out.decisions[0].has_value());
  EXPECT_FALSE(out.timed_out);
}

TEST(Fork, DestructorCleansUpSpinningChild) {
  // Parent abandons a spinning child by returning; the handle destructor
  // must cancel and join it without deadlocking the lock-step schedule.
  std::vector<Program> p{[](ProcessContext& ctx) {
    ChildHandle h = ctx.fork([](ProcessContext& cctx) {
      for (;;) cctx.yield();
    });
    for (int i = 0; i < 10; ++i) ctx.yield();
    ctx.decide(Value(1));
  }};
  Outcome out = run_execution(std::move(p), {Value(0)}, lockstep(10));
  EXPECT_TRUE(out.decisions[0].has_value());
}

TEST(Fork, ChildErrorSurfacesThroughJoin) {
  std::vector<Program> p{[](ProcessContext& ctx) {
    ChildHandle h = ctx.fork(
        [](ProcessContext&) { throw ProtocolError("child bug"); });
    EXPECT_THROW(h.join(ctx), ProtocolError);
    ctx.decide(Value(1));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(11));
}

TEST(Fork, ErrorAccessorReportsAfterDone) {
  std::vector<Program> p{[](ProcessContext& ctx) {
    ChildHandle h = ctx.fork(
        [](ProcessContext&) { throw ProtocolError("child bug"); });
    while (!h.done()) ctx.yield();
    EXPECT_NE(h.error(), nullptr);
    h.cancel();
    ctx.decide(Value(1));
  }};
  run_execution(std::move(p), {Value(0)}, lockstep(12));
}

// --- cooperative mutex ---

TEST(CooperativeMutex, MutualExclusion) {
  auto m = std::make_shared<CooperativeMutex>();
  auto inside = std::make_shared<std::atomic<int>>(0);
  auto violations = std::make_shared<std::atomic<int>>(0);
  std::vector<Program> p;
  for (int i = 0; i < 4; ++i) {
    p.push_back([m, inside, violations](ProcessContext& ctx) {
      for (int r = 0; r < 10; ++r) {
        CoopLock lk(*m, ctx);
        if (inside->fetch_add(1) != 0) violations->fetch_add(1);
        ctx.yield();  // hold across a step to invite contention
        inside->fetch_sub(1);
      }
      ctx.decide(Value(0));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(4), lockstep(13));
  EXPECT_FALSE(out.timed_out);
  EXPECT_EQ(violations->load(), 0);
}

TEST(CooperativeMutex, FreeModeMutualExclusion) {
  auto m = std::make_shared<CooperativeMutex>();
  auto inside = std::make_shared<std::atomic<int>>(0);
  auto violations = std::make_shared<std::atomic<int>>(0);
  std::vector<Program> p;
  for (int i = 0; i < 8; ++i) {
    p.push_back([m, inside, violations](ProcessContext& ctx) {
      for (int r = 0; r < 200; ++r) {
        CoopLock lk(*m, ctx);
        if (inside->fetch_add(1) != 0) violations->fetch_add(1);
        inside->fetch_sub(1);
      }
      ctx.decide(Value(0));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(8), free_mode());
  EXPECT_FALSE(out.timed_out);
  EXPECT_EQ(violations->load(), 0);
}

// --- shared world ---

TEST(SharedWorld, CreatesOnce) {
  SharedWorld w;
  int made = 0;
  auto factory = [&made] {
    ++made;
    return std::make_shared<int>(5);
  };
  auto a = w.get_or_create<int>("k", factory);
  auto b = w.get_or_create<int>("k", factory);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(made, 1);
}

TEST(SharedWorld, TypeMismatchThrows) {
  SharedWorld w;
  w.get_or_create<int>("k", [] { return std::make_shared<int>(1); });
  EXPECT_THROW(w.get_or_create<double>(
                   "k", [] { return std::make_shared<double>(1.0); }),
               ProtocolError);
}

TEST(SharedWorld, FindReturnsNullWhenAbsent) {
  SharedWorld w;
  EXPECT_EQ(w.find<int>("missing"), nullptr);
  w.get_or_create<int>("k", [] { return std::make_shared<int>(1); });
  EXPECT_NE(w.find<int>("k"), nullptr);
  EXPECT_EQ(w.find<double>("k"), nullptr);
  EXPECT_EQ(w.size(), 1u);
}

// --- free mode smoke ---

TEST(FreeMode, ManyProcessesDecide) {
  std::vector<Program> p;
  for (int i = 0; i < 16; ++i) {
    p.push_back([](ProcessContext& ctx) {
      for (int r = 0; r < 100; ++r) ctx.yield();
      ctx.decide(ctx.input());
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(16), free_mode());
  EXPECT_EQ(out.decided_count(), 16);
}

}  // namespace
}  // namespace mpcn
