// Tests: src/common/parse — the shared seed-range/axis/flag parsers
// behind the mpcn CLI and the bench binaries.
//
// The load-bearing contract is the FAILURE side: every malformed spec
// must throw ProtocolError with the offending token in the message,
// because these strings arrive from shell commands and CI scripts where
// a silently-guessed grid would burn hours of compute on the wrong
// cells.
#include <gtest/gtest.h>

#include "src/common/errors.h"
#include "src/common/parse.h"

namespace mpcn {
namespace {

std::vector<std::uint64_t> u64s(std::initializer_list<std::uint64_t> v) {
  return std::vector<std::uint64_t>(v);
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(ParseU64, AcceptsStrictDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64(" 7 "), 7u);  // surrounding whitespace is fine
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsEverythingElse) {
  EXPECT_THROW(parse_u64(""), ProtocolError);
  EXPECT_THROW(parse_u64(" "), ProtocolError);
  EXPECT_THROW(parse_u64("x"), ProtocolError);
  EXPECT_THROW(parse_u64("-1"), ProtocolError);
  EXPECT_THROW(parse_u64("+1"), ProtocolError);
  EXPECT_THROW(parse_u64("1.5"), ProtocolError);
  EXPECT_THROW(parse_u64("1e3"), ProtocolError);
  EXPECT_THROW(parse_u64("0x10"), ProtocolError);
  EXPECT_THROW(parse_u64("12 34"), ProtocolError);
  EXPECT_THROW(parse_u64("18446744073709551616"), ProtocolError);  // 2^64
}

TEST(ParseI64, HandlesSignAndLimits) {
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_EQ(parse_i64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parse_i64("-9223372036854775808"), INT64_MIN);
  EXPECT_THROW(parse_i64("9223372036854775808"), ProtocolError);
  EXPECT_THROW(parse_i64("-9223372036854775809"), ProtocolError);
  EXPECT_THROW(parse_i64("--5"), ProtocolError);
  EXPECT_THROW(parse_i64("-"), ProtocolError);
}

TEST(ParseDouble, StrictFullConsumption) {
  EXPECT_DOUBLE_EQ(parse_double("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_double("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_double("-2.5"), -2.5);
  EXPECT_THROW(parse_double(""), ProtocolError);
  EXPECT_THROW(parse_double("abc"), ProtocolError);
  EXPECT_THROW(parse_double("1.5x"), ProtocolError);
  // stod would accept these; a NaN crash probability is a silent no-op
  // adversary, so they must be rejected.
  EXPECT_THROW(parse_double("nan"), ProtocolError);
  EXPECT_THROW(parse_double("inf"), ProtocolError);
  EXPECT_THROW(parse_double("-inf"), ProtocolError);
  EXPECT_THROW(parse_double("0x1p3"), ProtocolError);
  EXPECT_THROW(parse_double("1e999"), ProtocolError);  // overflows to inf
}

TEST(ParseU64Axis, SinglesRangesAndMixes) {
  EXPECT_EQ(parse_u64_axis("5"), u64s({5}));
  EXPECT_EQ(parse_u64_axis("1..8"), u64s({1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(parse_u64_axis("3,5,9"), u64s({3, 5, 9}));
  EXPECT_EQ(parse_u64_axis("1..3,7"), u64s({1, 2, 3, 7}));
  EXPECT_EQ(parse_u64_axis("9,3"), u64s({9, 3}));  // order preserved
  EXPECT_EQ(parse_u64_axis(" 1 .. 3 "), u64s({1, 2, 3}));
  EXPECT_EQ(parse_u64_axis("4..4"), u64s({4}));
}

TEST(ParseU64Axis, MalformedSpecsFailLoudly) {
  EXPECT_THROW(parse_u64_axis(""), ProtocolError);
  EXPECT_THROW(parse_u64_axis("  "), ProtocolError);
  EXPECT_THROW(parse_u64_axis("1,,2"), ProtocolError);
  EXPECT_THROW(parse_u64_axis(",1"), ProtocolError);
  EXPECT_THROW(parse_u64_axis("1,"), ProtocolError);
  EXPECT_THROW(parse_u64_axis("1.."), ProtocolError);
  EXPECT_THROW(parse_u64_axis("..5"), ProtocolError);
  EXPECT_THROW(parse_u64_axis(".."), ProtocolError);
  EXPECT_THROW(parse_u64_axis("8..1"), ProtocolError);  // reversed
  EXPECT_THROW(parse_u64_axis("a"), ProtocolError);
  EXPECT_THROW(parse_u64_axis("1..b"), ProtocolError);
  EXPECT_THROW(parse_u64_axis("1...3"), ProtocolError);
  EXPECT_THROW(parse_u64_axis("-1..3"), ProtocolError);
  EXPECT_THROW(parse_u64_axis("3,3"), ProtocolError);     // duplicate
  EXPECT_THROW(parse_u64_axis("1..4,2"), ProtocolError);  // duplicate
  // Expansion cap: a typo'd huge range must fail, not allocate.
  EXPECT_THROW(parse_u64_axis("0..100000000"), ProtocolError);
}

TEST(ParseNameAxis, TrimsAndRejectsJunk) {
  EXPECT_EQ(parse_name_axis("condvar,spin_park"),
            (std::vector<std::string>{"condvar", "spin_park"}));
  EXPECT_EQ(parse_name_axis(" a , b "),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(parse_name_axis(""), ProtocolError);
  EXPECT_THROW(parse_name_axis("a,,b"), ProtocolError);
  EXPECT_THROW(parse_name_axis("a,a"), ProtocolError);
  EXPECT_THROW(parse_name_axis(",a"), ProtocolError);
}

TEST(FlagScan, PresenceAndValues) {
  const char* argv_c[] = {"prog",   "--wait", "spin", "--json=x.json",
                          "--flag", "-n"};
  char** argv = const_cast<char**>(argv_c);
  const int argc = 6;
  EXPECT_TRUE(flag_present(argc, argv, "wait"));
  EXPECT_TRUE(flag_present(argc, argv, "json"));
  EXPECT_TRUE(flag_present(argc, argv, "flag"));
  EXPECT_FALSE(flag_present(argc, argv, "spin"));  // a value, not a flag
  EXPECT_FALSE(flag_present(argc, argv, "wai"));   // no prefix matching

  EXPECT_EQ(flag_value(argc, argv, "wait"), std::optional<std::string>("spin"));
  EXPECT_EQ(flag_value(argc, argv, "json"),
            std::optional<std::string>("x.json"));
  // "--flag -n": next token starts with '-', so the flag is valueless.
  EXPECT_EQ(flag_value(argc, argv, "flag"), std::nullopt);
  EXPECT_EQ(flag_value(argc, argv, "absent"), std::nullopt);
}

TEST(FlagScan, ValueAtEndOfArgv) {
  const char* argv_c[] = {"prog", "--wait"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_TRUE(flag_present(2, argv, "wait"));
  EXPECT_EQ(flag_value(2, argv, "wait"), std::nullopt);
}

}  // namespace
}  // namespace mpcn
