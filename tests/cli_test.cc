// Tests: src/cli — argument parsing and the mpcn subcommands, driven
// in-process through cli_main (the binary is a one-line shell over it).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/args.h"
#include "src/cli/cli.h"
#include "src/common/errors.h"
#include "src/experiment/record.h"
#include "src/experiment/registry.h"

namespace mpcn {
namespace {

// Run cli_main on a shell-style argv, capturing stdout.
int run_cli(std::vector<std::string> argv_s, std::string* out = nullptr) {
  std::vector<char*> argv;
  argv.reserve(argv_s.size());
  for (std::string& a : argv_s) argv.push_back(a.data());
  testing::internal::CaptureStdout();
  const int code = cli_main(static_cast<int>(argv.size()), argv.data());
  const std::string captured = testing::internal::GetCapturedStdout();
  if (out) *out = captured;
  return code;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Args, FlagSyntaxAndPositionals) {
  const char* argv_c[] = {"mpcn", "run",    "snapshot_churn", "--in",
                          "3,0,1", "--seeds=1..4", "--no-timing"};
  char** argv = const_cast<char**>(argv_c);
  Args args(7, argv, 2, {"in", "seeds"}, {"no-timing"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "snapshot_churn");
  EXPECT_EQ(args.require("in"), "3,0,1");
  EXPECT_EQ(args.require("seeds"), "1..4");
  EXPECT_TRUE(args.has("no-timing"));
  EXPECT_FALSE(args.has("json"));
  EXPECT_EQ(args.value_or("json", "fallback"), "fallback");
}

TEST(Args, RejectsMalformedInvocations) {
  const char* unknown_c[] = {"mpcn", "run", "--bogus", "1"};
  char** unknown = const_cast<char**>(unknown_c);
  EXPECT_THROW(Args(4, unknown, 2, {"in"}, {}), ProtocolError);

  const char* dangling_c[] = {"mpcn", "run", "--in"};
  char** dangling = const_cast<char**>(dangling_c);
  EXPECT_THROW(Args(3, dangling, 2, {"in"}, {}), ProtocolError);

  const char* boolval_c[] = {"mpcn", "run", "--no-timing=yes"};
  char** boolval = const_cast<char**>(boolval_c);
  EXPECT_THROW(Args(3, boolval, 2, {}, {"no-timing"}), ProtocolError);

  const char* missing_c[] = {"mpcn", "run"};
  char** missing = const_cast<char**>(missing_c);
  const Args args(2, missing, 2, {"in"}, {});
  EXPECT_THROW(args.require("in"), ProtocolError);

  // A repeated value flag is a contradictory invocation, not last-wins.
  const char* twice_c[] = {"mpcn", "run", "--in", "3,0,1", "--in", "4,0,1"};
  char** twice = const_cast<char**>(twice_c);
  EXPECT_THROW(Args(6, twice, 2, {"in"}, {}), ProtocolError);
}

TEST(Args, ParseModelSpec) {
  const ModelSpec m = parse_model_spec("8,5,3");
  EXPECT_EQ(m, (ModelSpec{8, 5, 3}));
  EXPECT_THROW(parse_model_spec("8,5"), ProtocolError);
  EXPECT_THROW(parse_model_spec("8,5,3,1"), ProtocolError);
  EXPECT_THROW(parse_model_spec("a,b,c"), ProtocolError);
  EXPECT_THROW(parse_model_spec("3,9,1"), ProtocolError);  // t >= n
}

TEST(Cli, UsageAndUnknownCommands) {
  EXPECT_EQ(run_cli({"mpcn"}), 2);
  EXPECT_EQ(run_cli({"mpcn", "frobnicate"}), 2);
  std::string out;
  EXPECT_EQ(run_cli({"mpcn", "help"}, &out), 0);
  EXPECT_NE(out.find("run <scenario>"), std::string::npos);
}

TEST(Cli, ListEnumeratesRegistryWithAxisColumns) {
  std::string out;
  ASSERT_EQ(run_cli({"mpcn", "list"}, &out), 0);
  EXPECT_NE(out.find("snapshot_churn"), std::string::npos);
  EXPECT_NE(out.find("trivial_kset"), std::string::npos);
  EXPECT_NE(out.find("colored"), std::string::npos);
  EXPECT_NE(out.find("axis"), std::string::npos);
  EXPECT_NE(out.find("x=1 t=0 n>=2"), std::string::npos);  // racy_register
}

TEST(Cli, ListJsonIsMachineReadable) {
  std::string out;
  ASSERT_EQ(run_cli({"mpcn", "list", "--json"}, &out), 0);
  const Json arr = Json::parse(out);
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), scenario_registry().size());
  bool saw_racy = false;
  for (const Json& j : arr.items()) {
    EXPECT_TRUE(j.find("name") && j.find("axis") && j.find("colored") &&
                j.find("has_task") && j.find("description"));
    if (j.at("name").as_string() == "racy_register") {
      saw_racy = true;
      EXPECT_EQ(j.at("axis").as_string(), "x=1 t=0 n>=2");
      EXPECT_TRUE(j.at("has_task").as_bool());
      EXPECT_FALSE(j.at("colored").as_bool());
    }
  }
  EXPECT_TRUE(saw_racy);
}

TEST(Cli, ExploreFindsSeededBugAndWritesReport) {
  TempFile json("cli_explore_report.json");
  std::string out;
  // Exit 1 signals "violation found" (parallel to diff's regressions).
  ASSERT_EQ(run_cli({"mpcn", "explore", "racy_register", "--in", "2,0,1",
                     "--policy", "pct", "--budget", "200", "--seed", "1",
                     "--json", json.path},
                    &out),
            1);
  const Json report = Json::parse(slurp(json.path));
  EXPECT_TRUE(report.at("found").as_bool());
  EXPECT_EQ(report.at("policy").as_string(), "pct");
  const Json& v = report.at("violation_details").at(0);
  EXPECT_TRUE(v.at("shrunk_verified").as_bool());
  EXPECT_LE(v.at("shrunk_len").as_int(), 14);
}

TEST(Cli, ExploreCleanScenarioExitsZero) {
  std::string out;
  ASSERT_EQ(run_cli({"mpcn", "explore", "snapshot_churn", "--in", "2,0,1",
                     "--policy", "random", "--budget", "3"},
                    &out),
            0);
}

TEST(Cli, ExploreRecordReplayRoundTripsByteIdentically) {
  TempFile t1("cli_trace_1.json");
  TempFile t2("cli_trace_2.json");
  ASSERT_EQ(run_cli({"mpcn", "explore", "racy_register", "--in", "2,0,1",
                     "--policy", "random", "--budget", "1", "--seed", "7",
                     "--record", t1.path}),
            0);
  std::string out;
  ASSERT_EQ(run_cli({"mpcn", "explore", "racy_register", "--in", "2,0,1",
                     "--replay", t1.path, "--record", t2.path},
                    &out),
            0);
  EXPECT_NE(out.find("replay: ok"), std::string::npos) << out;
  EXPECT_EQ(slurp(t1.path), slurp(t2.path));
  EXPECT_FALSE(slurp(t1.path).empty());
}

TEST(Cli, RunRejectsBadInvocations) {
  EXPECT_EQ(run_cli({"mpcn", "run"}), 2);  // no scenario
  EXPECT_EQ(run_cli({"mpcn", "run", "no_such", "--in", "3,0,1"}), 2);
  EXPECT_EQ(run_cli({"mpcn", "run", "snapshot_churn"}), 2);  // no --in
  EXPECT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--seeds", "4..1"}),
            2);
  EXPECT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--mode", "direct", "--source", "4,0,1"}),
            2);
  EXPECT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--crash-max", "1"}),
            2);  // --crash-max without --crash-p
}

TEST(Cli, RunShardedMatchesInProcessAndDiffsClean) {
  TempFile local("cli_test_local.json");
  TempFile shard("cli_test_shard.json");
  ASSERT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--seeds", "1..4", "--json", local.path,
                     "--no-timing"}),
            0);
  // Fork-mode workers: the test binary cannot exec itself as `mpcn`.
  ASSERT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--seeds", "1..4", "--shards", "2", "--fork-workers",
                     "--json", shard.path, "--no-timing"}),
            0);
  const std::string local_text = slurp(local.path);
  ASSERT_FALSE(local_text.empty());
  EXPECT_EQ(local_text, slurp(shard.path));

  std::string out;
  EXPECT_EQ(run_cli({"mpcn", "diff", local.path, shard.path}, &out), 0);
  EXPECT_NE(out.find("no regressions"), std::string::npos);
}

TEST(Cli, DiffFlagsInjectedStepRegression) {
  TempFile a("cli_test_diff_a.json");
  TempFile b("cli_test_diff_b.json");
  ASSERT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--seeds", "1..2", "--json", a.path, "--no-timing"}),
            0);
  // Inject a step-count regression into a copy of the report.
  Report doctored = Report::from_json(Json::parse(slurp(a.path)));
  ASSERT_FALSE(doctored.records.empty());
  doctored.records[0].steps += 100;
  {
    std::ofstream out(b.path);
    out << doctored.to_json(false).dump(2) << "\n";
  }
  std::string out;
  EXPECT_EQ(run_cli({"mpcn", "diff", a.path, b.path}, &out), 1);
  EXPECT_NE(out.find("STEP REGRESSION"), std::string::npos);
  EXPECT_EQ(out.find("no regressions"), std::string::npos);
}

TEST(Cli, DiffRejectsMissingFiles) {
  EXPECT_EQ(run_cli({"mpcn", "diff", "no_such_a.json", "no_such_b.json"}),
            2);
  EXPECT_EQ(run_cli({"mpcn", "diff", "only_one.json"}), 2);
}

TEST(Cli, InputPoolsMayRepeatValues) {
  // All processes proposing the same value is the classic agreement
  // case; the pool parser must not dedupe.
  std::string out;
  ASSERT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--inputs", "7,7,7", "--json", "-", "--no-timing"},
                    &out),
            0);
  const Report rep = Report::from_json(Json::parse(out));
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].inputs,
            (std::vector<Value>{Value(7), Value(7), Value(7)}));
}

TEST(Cli, SeedListAxisAndJsonToStdout) {
  std::string out;
  ASSERT_EQ(run_cli({"mpcn", "run", "snapshot_churn", "--in", "3,0,1",
                     "--seeds", "2,5", "--json", "-", "--no-timing"},
                    &out),
            0);
  const Report rep = Report::from_json(Json::parse(out));
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_EQ(rep.records[0].seed, 2u);
  EXPECT_EQ(rep.records[1].seed, 5u);
  EXPECT_EQ(rep.records[0].cell_index, 0);
  EXPECT_EQ(rep.records[1].cell_index, 1);
}

}  // namespace
}  // namespace mpcn
