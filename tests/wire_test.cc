// Tests: src/dist/wire — the JSON-lines protocol for cross-process
// shards, and the worker loop's robustness contract.
//
// The load-bearing contracts:
//   * CellSpec and every RunRecord field round-trip through the wire
//     framing, so a worker's answer is indistinguishable from an
//     in-process run;
//   * truncated/garbage lines throw WireError at the parse seam and are
//     answered with an error line (never a crash) by the worker loop;
//   * cells that cannot cross the wire (anonymous algorithms, custom
//     tasks) are rejected loudly at from_cell time;
//   * a worker rebuilding a cell from its spec reproduces the
//     coordinator-side run_cell record byte-for-byte (timing excluded).
#include <gtest/gtest.h>

#include "src/common/errors.h"
#include "src/dist/shard.h"
#include "src/dist/wire.h"
#include "src/experiment/experiment.h"
#include "src/experiment/registry.h"
#include "src/tasks/algorithms.h"
#include "src/tasks/task.h"

namespace mpcn {
namespace {

// A grid cell with nothing left at its default value.
ExperimentCell sample_cell() {
  Experiment e = Experiment::named("trivial_kset", ModelSpec{4, 2, 1});
  e.in(ModelSpec{5, 2, 1})
      .inputs_fn([](const ModelSpec& m) {
        std::vector<Value> in;
        for (int i = 0; i < m.n; ++i) in.push_back(Value(10 + i));
        return in;
      })
      .seed(9)
      .mem(MemKind::kAfek)
      .wait_strategy(WaitStrategy::kSpin)
      .step_limit(123456)
      .wall_limit(std::chrono::milliseconds(7890));
  std::vector<ExperimentCell> cells = e.cells();
  return cells.at(0);
}

TEST(CellSpecJson, RoundTripsEveryField) {
  CellSpec spec = CellSpec::from_cell(sample_cell());
  spec.hop_index = 3;
  spec.cell_index = 7;
  spec.check_legality = false;
  spec.scheduler = SchedulerMode::kFree;
  spec.stop_when_all_correct_decided = false;
  spec.crashes = CrashPlan::hazard(0.25, 2, 77, {0, 2});

  const CellSpec back = CellSpec::from_json(spec.to_json());
  EXPECT_EQ(back.scenario, "trivial_kset");
  EXPECT_EQ(back.source, (ModelSpec{4, 2, 1}));
  EXPECT_EQ(back.mode, ExecutionMode::kSimulated);
  EXPECT_EQ(back.target, (ModelSpec{5, 2, 1}));
  EXPECT_EQ(back.hop_index, 3);
  EXPECT_EQ(back.cell_index, 7);
  EXPECT_EQ(back.mem, MemKind::kAfek);
  EXPECT_FALSE(back.check_legality);
  EXPECT_TRUE(back.use_scenario_task);
  EXPECT_EQ(back.scheduler, SchedulerMode::kFree);
  EXPECT_EQ(back.wait, WaitStrategy::kSpin);
  EXPECT_EQ(back.seed, 9u);
  EXPECT_EQ(back.step_limit, 123456u);
  EXPECT_EQ(back.wall_limit_ms, 7890);
  EXPECT_FALSE(back.stop_when_all_correct_decided);
  EXPECT_EQ(back.crashes.to_json().dump(), spec.crashes.to_json().dump());
  ASSERT_EQ(back.inputs.size(), 5u);
  EXPECT_EQ(back.inputs[4], Value(14));
  // Second hop: identical dumps (byte determinism of the framing).
  EXPECT_EQ(CellSpec::from_json(back.to_json()).to_json().dump(),
            spec.to_json().dump());
}

TEST(CrashPlanJson, AllKindsRoundTrip) {
  const CrashPlan plans[] = {
      CrashPlan::none(),
      CrashPlan::fixed({CrashPoint{1, 5}, CrashPoint{3, 1}}),
      CrashPlan::hazard(0.125, 3, 42, {0, 1, 4}),
      CrashPlan::propose_trap({"sa/0", "sa/1"}, 2, 4,
                              CrashPlan::TrapPoint::kOwnerElected),
  };
  for (const CrashPlan& p : plans) {
    EXPECT_EQ(CrashPlan::from_json(p.to_json()).to_json().dump(),
              p.to_json().dump());
  }
  EXPECT_THROW(CrashPlan::from_json(Json::parse("{\"kind\":\"bogus\"}")),
               std::exception);
}

TEST(WireFraming, MessageLinesRoundTrip) {
  const WireMessage hello = parse_wire_line(hello_line());
  EXPECT_EQ(hello.type, WireMessage::Type::kHello);
  EXPECT_EQ(hello.protocol, kWireProtocolVersion);

  const CellSpec spec = CellSpec::from_cell(sample_cell());
  const WireMessage cell = parse_wire_line(cell_line(12, spec));
  EXPECT_EQ(cell.type, WireMessage::Type::kCell);
  EXPECT_EQ(cell.id, 12);
  ASSERT_TRUE(cell.spec.has_value());
  EXPECT_EQ(cell.spec->to_json().dump(), spec.to_json().dump());

  EXPECT_EQ(parse_wire_line(shutdown_line()).type,
            WireMessage::Type::kShutdown);

  const WireMessage err = parse_wire_line(error_line("went wrong"));
  EXPECT_EQ(err.type, WireMessage::Type::kError);
  EXPECT_EQ(err.message, "went wrong");
}

// The satellite contract: every RunRecord field survives the result
// framing, including the awkward ones (undecided entries, timeouts,
// error text, the task verdict triple).
TEST(WireFraming, ResultRoundTripsEveryRunRecordField) {
  RunRecord rec;
  rec.scenario = "trivial_kset";
  rec.cell_index = 5;
  rec.mode = ExecutionMode::kColored;
  rec.source = ModelSpec{4, 2, 1};
  rec.target = ModelSpec{6, 3, 2};
  rec.hop_index = 2;
  rec.seed = 99;
  rec.scheduler = SchedulerMode::kFree;
  rec.wait = WaitStrategy::kSpinPark;
  rec.mem = MemKind::kAfek;
  rec.inputs = {Value(1), Value("two"), Value(Value::List{Value(3), Value()})};
  rec.decisions = {std::optional<Value>(Value(1)), std::nullopt,
                   std::optional<Value>(Value("w"))};
  rec.crashed = {false, true, false};
  rec.timed_out = true;
  rec.steps = 31337;
  rec.wall_ms = 12.5;
  rec.task = "2-set agreement";
  rec.validated = true;
  rec.valid = false;
  rec.why = "three distinct values decided";
  rec.error = "boom: \"quoted\"\nsecond line";

  const std::string line = result_line(41, rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // framing-safe

  const WireMessage msg = parse_wire_line(line);
  ASSERT_EQ(msg.type, WireMessage::Type::kResult);
  EXPECT_EQ(msg.id, 41);
  ASSERT_TRUE(msg.record.has_value());
  const RunRecord& back = *msg.record;
  EXPECT_EQ(back.scenario, rec.scenario);
  EXPECT_EQ(back.cell_index, rec.cell_index);
  EXPECT_EQ(back.mode, rec.mode);
  EXPECT_EQ(back.source, rec.source);
  EXPECT_EQ(back.target, rec.target);
  EXPECT_EQ(back.hop_index, rec.hop_index);
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.scheduler, rec.scheduler);
  EXPECT_EQ(back.wait, rec.wait);
  EXPECT_EQ(back.mem, rec.mem);
  EXPECT_EQ(back.inputs, rec.inputs);
  EXPECT_EQ(back.decisions, rec.decisions);
  EXPECT_EQ(back.crashed, rec.crashed);
  EXPECT_EQ(back.timed_out, rec.timed_out);
  EXPECT_EQ(back.steps, rec.steps);
  EXPECT_DOUBLE_EQ(back.wall_ms, rec.wall_ms);
  EXPECT_EQ(back.task, rec.task);
  EXPECT_EQ(back.validated, rec.validated);
  EXPECT_EQ(back.valid, rec.valid);
  EXPECT_EQ(back.why, rec.why);
  EXPECT_EQ(back.error, rec.error);
}

TEST(WireFraming, GarbageLinesThrowWireError) {
  EXPECT_THROW(parse_wire_line(""), WireError);
  EXPECT_THROW(parse_wire_line("not json"), WireError);
  EXPECT_THROW(parse_wire_line("{\"type\":\"result\",\"id\":1"), WireError);
  EXPECT_THROW(parse_wire_line("[1,2,3]"), WireError);
  EXPECT_THROW(parse_wire_line("{\"no\":\"type\"}"), WireError);
  EXPECT_THROW(parse_wire_line("{\"type\":42}"), WireError);
  EXPECT_THROW(parse_wire_line("{\"type\":\"bogus\"}"), WireError);
  // Structurally valid JSON, semantically truncated messages.
  EXPECT_THROW(parse_wire_line("{\"type\":\"cell\",\"id\":1}"), WireError);
  EXPECT_THROW(parse_wire_line("{\"type\":\"cell\",\"id\":1,\"spec\":{}}"),
               WireError);
  EXPECT_THROW(parse_wire_line("{\"type\":\"result\",\"id\":1}"), WireError);
}

TEST(CellSpecWire, RejectsNonSerializableCells) {
  // Anonymous algorithm: no registry name to rebuild from.
  Experiment anon = Experiment::of(trivial_kset_algorithm(3, 1));
  anon.direct().inputs({Value(0), Value(1), Value(2)});
  EXPECT_THROW(CellSpec::from_cell(anon.cells().at(0)), ProtocolError);

  // Custom task on a named scenario: not the canonical one.
  Experiment custom = Experiment::named("trivial_kset", ModelSpec{3, 1, 1});
  custom.direct()
      .inputs({Value(0), Value(1), Value(2)})
      .with_task(std::make_shared<KSetAgreementTask>(3));
  EXPECT_THROW(CellSpec::from_cell(custom.cells().at(0)), ProtocolError);
}

TEST(CellSpecWire, RebuiltCellRunsIdentically) {
  const ExperimentCell cell = sample_cell();
  const RunRecord direct = run_cell(cell);
  const RunRecord rebuilt = run_cell(CellSpec::from_cell(cell).to_cell());
  EXPECT_EQ(rebuilt.to_json(false).dump(), direct.to_json(false).dump());
  EXPECT_TRUE(direct.error.empty()) << direct.error;
}

// ----------------------------------------------------------- worker loop

TEST(WorkerLoop, ServesCellsAndSurvivesGarbage) {
  Experiment e = Experiment::named("trivial_kset", ModelSpec{3, 1, 1});
  e.direct().inputs({Value(0), Value(1), Value(2)}).seed(4);
  const ExperimentCell cell = e.cells().at(0);
  CellSpec good = CellSpec::from_cell(cell);
  CellSpec unknown = good;
  unknown.scenario = "no_such_scenario";

  StringLineIO io({
      "complete garbage",
      cell_line(0, unknown),
      cell_line(1, good),
      shutdown_line(),
      cell_line(2, good),  // after shutdown: must not be served
  });
  run_worker_loop(io);

  ASSERT_EQ(io.written().size(), 4u);
  EXPECT_EQ(parse_wire_line(io.written()[0]).type,
            WireMessage::Type::kHello);
  EXPECT_EQ(parse_wire_line(io.written()[1]).type,
            WireMessage::Type::kError);

  // The unknown scenario became a captured per-cell error, not a crash.
  const WireMessage bad = parse_wire_line(io.written()[2]);
  ASSERT_EQ(bad.type, WireMessage::Type::kResult);
  EXPECT_EQ(bad.id, 0);
  ASSERT_TRUE(bad.record.has_value());
  EXPECT_FALSE(bad.record->error.empty());
  EXPECT_EQ(bad.record->scenario, "no_such_scenario");

  const WireMessage ok = parse_wire_line(io.written()[3]);
  ASSERT_EQ(ok.type, WireMessage::Type::kResult);
  EXPECT_EQ(ok.id, 1);
  ASSERT_TRUE(ok.record.has_value());
  EXPECT_TRUE(ok.record->error.empty()) << ok.record->error;
  EXPECT_EQ(ok.record->to_json(false).dump(),
            run_cell(cell).to_json(false).dump());
}

TEST(WorkerLoop, MaxCellsInjectsACrashBeforeReplying) {
  Experiment e = Experiment::named("trivial_kset", ModelSpec{3, 1, 1});
  e.direct().inputs({Value(0), Value(1), Value(2)});
  const CellSpec spec = CellSpec::from_cell(e.cells().at(0));
  StringLineIO io({cell_line(0, spec), cell_line(1, spec)});
  WorkerOptions options;
  options.max_cells = 1;
  run_worker_loop(io, options);
  // Hello only: the worker died on receiving its first cell, unanswered.
  ASSERT_EQ(io.written().size(), 1u);
  EXPECT_EQ(parse_wire_line(io.written()[0]).type,
            WireMessage::Type::kHello);
}

// ------------------------------------------------------------ telemetry

TEST(WireTelemetry, MetricsLineRoundTrips) {
  MetricsSnapshot snap;
  snap.counters["explore.schedules"] = 42;
  snap.counters["wait.parks"] = 7;
  snap.gauges["shard.queue_depth"] = -3;
  MetricsSnapshot::HistogramData h;
  h.count = 2;
  h.sum = 9;
  h.buckets = {0, 1, 0, 1};
  snap.histograms["shard.cell_latency_us"] = h;

  const std::string line = metrics_line(snap);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // framing-safe
  const WireMessage msg = parse_wire_line(line);
  ASSERT_EQ(msg.type, WireMessage::Type::kMetrics);
  ASSERT_TRUE(msg.snapshot.has_value());
  EXPECT_EQ(msg.snapshot->to_json().dump(), snap.to_json().dump());
}

TEST(WireTelemetry, ShutdownMetricsFlagRoundTrips) {
  EXPECT_FALSE(parse_wire_line(shutdown_line()).want_metrics);
  EXPECT_FALSE(parse_wire_line(shutdown_line(false)).want_metrics);
  EXPECT_TRUE(parse_wire_line(shutdown_line(true)).want_metrics);
  // The telemetry extension must not change plain shutdown bytes: older
  // tests (and mixed-version pools) rely on the original framing.
  EXPECT_EQ(shutdown_line(false), shutdown_line());
}

TEST(WireTelemetry, WorkerShipsSnapshotOnRequest) {
  Experiment e = Experiment::named("trivial_kset", ModelSpec{3, 1, 1});
  e.direct().inputs({Value(0), Value(1), Value(2)});
  const CellSpec spec = CellSpec::from_cell(e.cells().at(0));
  StringLineIO io({cell_line(0, spec), shutdown_line(true)});
  run_worker_loop(io);

  // hello, result, metrics — exactly one extra line vs plain shutdown.
  ASSERT_EQ(io.written().size(), 3u);
  const WireMessage last = parse_wire_line(io.written()[2]);
  ASSERT_EQ(last.type, WireMessage::Type::kMetrics);
  ASSERT_TRUE(last.snapshot.has_value());
  const auto it = last.snapshot->counters.find("worker.cells_served");
  ASSERT_NE(it, last.snapshot->counters.end());
  EXPECT_GE(it->second, 1u);
}

TEST(WireTelemetry, TelemetryConfigAndReportLinesRoundTrip) {
  // Config (coordinator -> worker): arm the heartbeat, optionally with
  // span recording for exec-mode workers. No "seq" field marks it as a
  // config rather than a report.
  const WireMessage cfg = parse_wire_line(telemetry_request_line(250));
  ASSERT_EQ(cfg.type, WireMessage::Type::kTelemetry);
  EXPECT_EQ(cfg.telemetry_interval_ms, 250);
  EXPECT_EQ(cfg.telemetry_seq, -1);
  EXPECT_FALSE(cfg.want_trace);
  EXPECT_TRUE(parse_wire_line(telemetry_request_line(100, true)).want_trace);

  // Report (worker -> coordinator): seq + worker clock + metrics delta.
  MetricsSnapshot delta;
  delta.counters["worker.cells_served"] = 3;
  const std::string line = telemetry_line(7, 123456789, delta);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // framing-safe
  const WireMessage rep = parse_wire_line(line);
  ASSERT_EQ(rep.type, WireMessage::Type::kTelemetry);
  EXPECT_EQ(rep.telemetry_seq, 7);
  EXPECT_EQ(rep.worker_now_us, 123456789);
  ASSERT_TRUE(rep.snapshot.has_value());
  EXPECT_EQ(rep.snapshot->to_json().dump(), delta.to_json().dump());
}

TEST(WireTelemetry, TraceLineAndShutdownTraceFlagRoundTrip) {
  Json doc = Json::object();
  doc.set("traceEvents", Json::array());
  doc.set("displayTimeUnit", "ms");
  const std::string line = trace_line(doc);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const WireMessage msg = parse_wire_line(line);
  ASSERT_EQ(msg.type, WireMessage::Type::kTrace);
  ASSERT_TRUE(msg.trace_doc.has_value());
  EXPECT_EQ(msg.trace_doc->dump(), doc.dump());

  EXPECT_FALSE(parse_wire_line(shutdown_line(true)).want_trace);
  const WireMessage both = parse_wire_line(shutdown_line(true, true));
  EXPECT_TRUE(both.want_metrics);
  EXPECT_TRUE(both.want_trace);
  // Strictly additive: plain and metrics-only shutdown bytes unchanged.
  EXPECT_EQ(shutdown_line(false, false), shutdown_line());
}

TEST(WireTelemetry, ArmedWorkerStreamsHeartbeats) {
  Experiment e = Experiment::named("trivial_kset", ModelSpec{3, 1, 1});
  e.direct().inputs({Value(0), Value(1), Value(2)});
  const CellSpec spec = CellSpec::from_cell(e.cells().at(0));
  // A huge interval: only the arm-beat and the per-cell beat fire, so
  // the line count is deterministic — no timer races in the pin.
  StringLineIO io({telemetry_request_line(60'000), cell_line(0, spec),
                   shutdown_line()});
  run_worker_loop(io);

  // hello, arm-beat (seq 0), result, post-cell beat (seq 1).
  ASSERT_EQ(io.written().size(), 4u);
  const WireMessage arm_beat = parse_wire_line(io.written()[1]);
  ASSERT_EQ(arm_beat.type, WireMessage::Type::kTelemetry);
  EXPECT_EQ(arm_beat.telemetry_seq, 0);
  EXPECT_EQ(parse_wire_line(io.written()[2]).type,
            WireMessage::Type::kResult);
  const WireMessage cell_beat = parse_wire_line(io.written()[3]);
  ASSERT_EQ(cell_beat.type, WireMessage::Type::kTelemetry);
  EXPECT_EQ(cell_beat.telemetry_seq, 1);
  EXPECT_GE(cell_beat.worker_now_us, arm_beat.worker_now_us);
  // The post-cell delta carries the work that happened since arming.
  ASSERT_TRUE(cell_beat.snapshot.has_value());
  const auto it = cell_beat.snapshot->counters.find("worker.cells_served");
  ASSERT_NE(it, cell_beat.snapshot->counters.end());
  EXPECT_GE(it->second, 1u);
}

TEST(WireTelemetry, GarbageErrorsCarryAnExcerpt) {
  try {
    parse_wire_line("this is not json \x01");
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("this is not json"), std::string::npos) << what;
    EXPECT_NE(what.find("\\x01"), std::string::npos) << what;  // escaped
  }
  // Long garbage is truncated but sized, so logs stay bounded while
  // still saying how much junk arrived.
  try {
    parse_wire_line(std::string(500, 'a'));
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_LT(what.size(), 400u) << what;
    EXPECT_NE(what.find("..."), std::string::npos) << what;
    EXPECT_NE(what.find("(500 bytes)"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace mpcn
