// Tests for the extension modules: TournamentTestAndSet (test&set from
// 2-consensus, the [19] direction used in Section 4.3), CommitAdopt,
// Omega_x + leader consensus (Section 1.3 boosting), and the
// (m,l)-set-object constructions (Section 1.3 hierarchy).
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/common/errors.h"
#include "src/core/commit_adopt.h"
#include "src/core/pipeline.h"
#include "src/objects/tournament_tas.h"
#include "src/oracles/leader_consensus.h"
#include "src/oracles/omega.h"
#include "src/runtime/execution.h"
#include "src/tasks/algorithms.h"
#include "src/tasks/ml_constructions.h"
#include "src/tasks/task.h"

namespace mpcn {
namespace {

ExecutionOptions lockstep(std::uint64_t seed, std::uint64_t limit = 400000) {
  ExecutionOptions o;
  o.mode = SchedulerMode::kLockstep;
  o.seed = seed;
  o.step_limit = limit;
  return o;
}

std::vector<Value> int_inputs(int n, int base = 0) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(Value(base + i));
  return v;
}

// --- TournamentTestAndSet ---

class TournamentWinners
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TournamentWinners, ExactlyOneWinner) {
  const int n = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  auto tas = std::make_shared<TournamentTestAndSet>(n);
  auto winners = std::make_shared<std::atomic<int>>(0);
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([tas, winners](ProcessContext& ctx) {
      if (tas->test_and_set(ctx)) winners->fetch_add(1);
      ctx.decide(Value(0));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), lockstep(seed));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(winners->load(), 1);
  ASSERT_TRUE(tas->winner().has_value());
  EXPECT_GE(*tas->winner(), 0);
  EXPECT_LT(*tas->winner(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TournamentWinners,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Range<std::uint64_t>(1, 9)));

TEST(TournamentTas, FirstAloneWins) {
  // p0 completes before anyone else starts: p0 must win (the sequential
  // test&set spec).
  auto tas = std::make_shared<TournamentTestAndSet>(5);
  auto gate = std::make_shared<std::atomic<bool>>(false);
  std::vector<Program> p;
  p.push_back([tas, gate](ProcessContext& ctx) {
    EXPECT_TRUE(tas->test_and_set(ctx));
    gate->store(true);
    ctx.decide(Value(0));
  });
  for (int i = 1; i < 5; ++i) {
    p.push_back([tas, gate](ProcessContext& ctx) {
      while (!gate->load()) ctx.yield();
      EXPECT_FALSE(tas->test_and_set(ctx));
      ctx.decide(Value(0));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(5), lockstep(3));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(*tas->winner(), 0);
}

TEST(TournamentTas, OneShotEnforced) {
  auto tas = std::make_shared<TournamentTestAndSet>(2);
  std::vector<Program> p{
      [tas](ProcessContext& ctx) {
        (void)tas->test_and_set(ctx);
        EXPECT_THROW(tas->test_and_set(ctx), ProtocolError);
        ctx.decide(Value(0));
      },
      [](ProcessContext& ctx) { ctx.decide(Value(0)); }};
  run_execution(std::move(p), int_inputs(2), lockstep(4));
}

TEST(TournamentTas, SingleProcessDegenerate) {
  auto tas = std::make_shared<TournamentTestAndSet>(1);
  std::vector<Program> p{[tas](ProcessContext& ctx) {
    EXPECT_TRUE(tas->test_and_set(ctx));
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), int_inputs(1), lockstep(5));
}

TEST(TournamentTas, CrashedWinnerStillUnique) {
  // A contender crashing mid-walk must not allow two winners.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto tas = std::make_shared<TournamentTestAndSet>(4);
    auto winners = std::make_shared<std::atomic<int>>(0);
    ExecutionOptions o = lockstep(seed);
    o.crashes = CrashPlan::fixed({{0, 1 + seed % 5}});
    std::vector<Program> p;
    for (int i = 0; i < 4; ++i) {
      p.push_back([tas, winners](ProcessContext& ctx) {
        if (tas->test_and_set(ctx)) winners->fetch_add(1);
        ctx.decide(Value(0));
      });
    }
    run_execution(std::move(p), int_inputs(4), o);
    EXPECT_LE(winners->load(), 1) << "seed " << seed;
  }
}

// --- CommitAdopt ---

class CommitAdoptProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CommitAdoptProperties, CommitRuleHolds) {
  const int n = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  auto ca = std::make_shared<CommitAdopt>(n);
  auto results = std::make_shared<std::vector<GradedValue>>(
      static_cast<std::size_t>(n));
  auto results_m = std::make_shared<std::mutex>();
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([ca, results, results_m, i](ProcessContext& ctx) {
      GradedValue g = ca->propose(ctx, ctx.input());
      {
        std::lock_guard<std::mutex> lk(*results_m);
        (*results)[static_cast<std::size_t>(i)] = g;
      }
      ctx.decide(g.value);
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), lockstep(seed));
  ASSERT_FALSE(out.timed_out);
  // Commit rule: if anyone committed v, everyone's value is v.
  for (int i = 0; i < n; ++i) {
    const GradedValue& gi = (*results)[static_cast<std::size_t>(i)];
    if (gi.grade == Grade::kCommit) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ((*results)[static_cast<std::size_t>(j)].value, gi.value)
            << "commit rule violated";
      }
    }
    // Validity: returned values were proposed.
    EXPECT_GE(gi.value.as_int(), 0);
    EXPECT_LT(gi.value.as_int(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CommitAdoptProperties,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Range<std::uint64_t>(1, 21)));

TEST(CommitAdopt, UnanimousProposalsCommit) {
  const int n = 4;
  auto ca = std::make_shared<CommitAdopt>(n);
  auto commits = std::make_shared<std::atomic<int>>(0);
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([ca, commits](ProcessContext& ctx) {
      GradedValue g = ca->propose(ctx, Value(77));
      EXPECT_EQ(g.value.as_int(), 77);
      if (g.grade == Grade::kCommit) commits->fetch_add(1);
      ctx.decide(g.value);
    });
  }
  std::vector<Value> inputs(static_cast<std::size_t>(n), Value(77));
  Outcome out = run_execution(std::move(p), inputs, lockstep(2));
  ASSERT_FALSE(out.timed_out);
  EXPECT_EQ(commits->load(), n) << "convergence: all-equal must all commit";
}

TEST(CommitAdopt, SoloProposerCommits) {
  auto ca = std::make_shared<CommitAdopt>(3);
  std::vector<Program> p{
      [ca](ProcessContext& ctx) {
        GradedValue g = ca->propose(ctx, Value("only"));
        EXPECT_EQ(g.grade, Grade::kCommit);
        ctx.decide(g.value);
      },
      [](ProcessContext& ctx) { ctx.decide(Value(0)); },
      [](ProcessContext& ctx) { ctx.decide(Value(0)); }};
  run_execution(std::move(p), int_inputs(3), lockstep(3));
}

TEST(CommitAdopt, OneShotEnforced) {
  auto ca = std::make_shared<CommitAdopt>(1);
  std::vector<Program> p{[ca](ProcessContext& ctx) {
    (void)ca->propose(ctx, Value(1));
    EXPECT_THROW(ca->propose(ctx, Value(2)), ProtocolError);
    ctx.decide(Value(0));
  }};
  run_execution(std::move(p), int_inputs(1), lockstep(4));
}

// --- OmegaX + leader consensus ---

TEST(OmegaX, ParametersValidated) {
  EXPECT_THROW(OmegaX(3, 0, 0, 1), ProtocolError);
  EXPECT_THROW(OmegaX(3, 4, 0, 1), ProtocolError);
}

TEST(OmegaX, StabilizesToCommonSetWithCorrectMember) {
  const int n = 5, x = 2;
  auto oracle = std::make_shared<OmegaX>(n, x, /*stabilize at step*/ 100, 9);
  auto sets = std::make_shared<std::vector<std::set<ProcessId>>>(
      static_cast<std::size_t>(n));
  ExecutionOptions o = lockstep(5);
  o.crashes = CrashPlan::fixed({{0, 20}});
  std::vector<Program> p;
  for (int i = 0; i < n; ++i) {
    p.push_back([oracle, sets, i](ProcessContext& ctx) {
      std::set<ProcessId> last;
      for (int q = 0; q < 300; ++q) last = oracle->query(ctx);
      (*sets)[static_cast<std::size_t>(i)] = last;
      ctx.decide(Value(0));
    });
  }
  Outcome out = run_execution(std::move(p), int_inputs(n), o);
  // All correct processes end with the same set, of size x, containing a
  // non-crashed process.
  std::set<ProcessId> reference;
  for (int i = 0; i < n; ++i) {
    if (out.crashed[static_cast<std::size_t>(i)]) continue;
    const auto& s = (*sets)[static_cast<std::size_t>(i)];
    ASSERT_EQ(static_cast<int>(s.size()), x);
    if (reference.empty()) reference = s;
    EXPECT_EQ(s, reference);
  }
  bool has_correct = false;
  for (ProcessId q : reference) {
    if (!out.crashed[static_cast<std::size_t>(q)]) has_correct = true;
  }
  EXPECT_TRUE(has_correct);
}

class LeaderConsensus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeaderConsensus, SolvesConsensusDespiteCrashes) {
  // Consensus is unsolvable in ASM(n,t,1) for t >= 1; with Omega it is
  // wait-free solvable. n = 5, up to 3 crashes.
  const int n = 5;
  auto oracle =
      std::make_shared<OmegaX>(n, 1, /*stabilize*/ 400, GetParam());
  ExecutionOptions o = lockstep(GetParam(), 600000);
  o.crashes = CrashPlan::hazard(0.004, 3, GetParam() * 5 + 1);
  std::vector<Value> inputs = int_inputs(n, 60);
  Outcome out =
      run_execution(leader_consensus_programs(n, oracle), inputs, o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  std::set<Value> decided = out.distinct_decisions();
  ASSERT_EQ(decided.size(), 1u) << "consensus agreement";
  EXPECT_GE(decided.begin()->as_int(), 60);  // validity
  EXPECT_LT(decided.begin()->as_int(), 60 + n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaderConsensus,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(LeaderConsensus, WaitFreeUnderMaxCrashes) {
  const int n = 4;
  auto oracle = std::make_shared<OmegaX>(n, 1, 300, 7);
  ExecutionOptions o = lockstep(11, 600000);
  o.crashes = CrashPlan::fixed({{0, 50}, {1, 70}, {2, 90}});  // n-1 crashes
  Outcome out = run_execution(leader_consensus_programs(n, oracle),
                              int_inputs(n, 20), o);
  ASSERT_FALSE(out.timed_out);
  ASSERT_TRUE(out.decisions[3].has_value());
}

// --- (m,l)-set constructions ---

TEST(MlConstructions, ArithmeticBounds) {
  EXPECT_EQ(ml_construction_k(6, 3, 1), 2);   // 2 groups x 1
  EXPECT_EQ(ml_construction_k(6, 3, 2), 4);   // 2 groups x 2
  EXPECT_EQ(ml_construction_k(7, 3, 1), 3);   // ceil(7/3) = 3 groups
  EXPECT_EQ(ml_construction_k(4, 4, 1), 1);   // one group: consensus power
  // Constructibility: n*l <= k*m.
  EXPECT_TRUE(ml_kset_constructible(6, 2, 3, 1));
  EXPECT_FALSE(ml_kset_constructible(6, 1, 3, 1));
  EXPECT_TRUE(ml_kset_constructible(9, 3, 3, 1));
  EXPECT_FALSE(ml_kset_constructible(9, 2, 3, 1));
  // Our construction is within the constructible region.
  for (int n = 2; n <= 9; ++n) {
    for (int m = 1; m <= n; ++m) {
      for (int l = 1; l <= m; ++l) {
        EXPECT_TRUE(ml_kset_constructible(n, ml_construction_k(n, m, l), m,
                                          l))
            << n << " " << m << " " << l;
      }
    }
  }
}

class MlKsetConstruction
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, std::uint64_t>> {};

TEST_P(MlKsetConstruction, AtMostKDistinctWaitFree) {
  const int n = std::get<0>(GetParam());
  const int m = std::get<1>(GetParam());
  const int l = std::get<2>(GetParam());
  const std::uint64_t seed = std::get<3>(GetParam());
  if (m > n || l > m) GTEST_SKIP();
  ExecutionOptions o = lockstep(seed);
  // Wait-free: crash anyone, survivors still decide instantly.
  o.crashes = CrashPlan::hazard(0.02, n - 1, seed + 3);
  Outcome out =
      run_execution(kset_from_ml_objects(n, m, l), int_inputs(n, 5), o);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  const int k = ml_construction_k(n, m, l);
  EXPECT_LE(static_cast<int>(out.distinct_decisions().size()), k);
  for (const Value& v : out.distinct_decisions()) {
    EXPECT_GE(v.as_int(), 5);
    EXPECT_LT(v.as_int(), 5 + n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MlKsetConstruction,
    ::testing::Combine(::testing::Values(4, 6, 7), ::testing::Values(2, 3),
                       ::testing::Values(1, 2),
                       ::testing::Range<std::uint64_t>(1, 4)));

// --- engine on the Afek MEM substrate (ablation correctness) ---

TEST(EngineOnAfekMem, BackwardSimulationStillCorrect) {
  SimulatedAlgorithm a = trivial_kset_algorithm(3, 1);
  SimulationOptions so;
  so.mem = MemKind::kAfek;
  ExecutionOptions o = lockstep(3, 3'000'000);
  std::vector<Value> inputs = int_inputs(3, 40);
  Outcome out = run_simulated(a, ModelSpec{3, 1, 1}, inputs, o, so);
  ASSERT_FALSE(out.timed_out);
  EXPECT_TRUE(out.all_correct_decided());
  KSetAgreementTask task(2);
  std::string why;
  EXPECT_TRUE(task.validate(inputs, out.decisions, &why)) << why;
}

}  // namespace
}  // namespace mpcn
