// Tests: src/common/json — the dependency-free JSON writer/parser the
// experiment reports are built on. Determinism of dump() is load-bearing
// (byte-identical batch reports), so it is pinned here.
#include <gtest/gtest.h>

#include "src/common/json.h"

namespace mpcn {
namespace {

TEST(Json, ScalarKinds) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_EQ(Json(true).as_bool(), true);
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_EQ(Json(std::int64_t{-7}).as_int(), -7);
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  // Integers read as doubles too (JSON "number"), not vice versa.
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);
  EXPECT_THROW(Json(2.5).as_int(), JsonError);
  EXPECT_THROW(Json("x").as_bool(), JsonError);
}

TEST(Json, DumpCompact) {
  Json obj = Json::object();
  obj.set("name", "run").set("n", 4).set("ok", true).set("none", Json::null());
  Json arr = Json::array();
  arr.push(1).push(2.5).push("three");
  obj.set("items", std::move(arr));
  EXPECT_EQ(obj.dump(),
            "{\"name\":\"run\",\"n\":4,\"ok\":true,\"none\":null,"
            "\"items\":[1,2.5,\"three\"]}");
}

TEST(Json, DumpPreservesInsertionOrder) {
  Json a = Json::object();
  a.set("z", 1).set("a", 2);
  EXPECT_EQ(a.dump(), "{\"z\":1,\"a\":2}");
  // Re-setting a key keeps its original position (stable bytes).
  a.set("z", 3);
  EXPECT_EQ(a.dump(), "{\"z\":3,\"a\":2}");
}

TEST(Json, StringEscapes) {
  const std::string raw = "a\"b\\c\nd\te\x01" "f";
  const Json j(raw);
  EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  EXPECT_EQ(Json::parse(j.dump()).as_string(), raw);
}

TEST(Json, IntDoubleDistinctionSurvivesRoundTrip) {
  EXPECT_EQ(Json::parse("1").kind(), Json::Kind::kInt);
  EXPECT_EQ(Json::parse("1.0").kind(), Json::Kind::kDouble);
  EXPECT_EQ(Json::parse(Json(1.0).dump()).kind(), Json::Kind::kDouble);
  EXPECT_EQ(Json::parse(Json(std::int64_t{1}).dump()).kind(),
            Json::Kind::kInt);
  EXPECT_EQ(Json::parse("1e3").as_double(), 1000.0);
}

TEST(Json, ParseRoundTripStructured) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":null,\"c\":[true,false]}],\"d\":\"x\"}";
  Json j = Json::parse(text);
  EXPECT_EQ(j.dump(), text);
  EXPECT_EQ(j.at("a").at(2).at("c").at(1).as_bool(), false);
  EXPECT_EQ(j.at("d").as_string(), "x");
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), JsonError);
}

TEST(Json, ParsePrettyOutput) {
  Json obj = Json::object();
  Json inner = Json::array();
  inner.push(1).push(Json::object());
  obj.set("k", std::move(inner));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), obj);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("{a:1}"), JsonError);
  // RFC 8259 number strictness.
  EXPECT_THROW(Json::parse("01"), JsonError);
  EXPECT_THROW(Json::parse("-01"), JsonError);
  EXPECT_THROW(Json::parse("1."), JsonError);
  EXPECT_THROW(Json::parse(".5"), JsonError);
  EXPECT_THROW(Json::parse("-.5"), JsonError);
  EXPECT_THROW(Json::parse("1e"), JsonError);
  EXPECT_THROW(Json::parse("1e+"), JsonError);
  EXPECT_EQ(Json::parse("-0").as_int(), 0);
  EXPECT_DOUBLE_EQ(Json::parse("0.5").as_double(), 0.5);
  // Out-of-range numbers fail as JsonError, not std::out_of_range.
  EXPECT_THROW(Json::parse("1e999"), JsonError);
}

TEST(Json, EqualityIsStructural) {
  EXPECT_EQ(Json::parse("{\"a\":[1,2]}"), Json::parse("{\"a\":[1,2]}"));
  EXPECT_NE(Json::parse("{\"a\":[1,2]}"), Json::parse("{\"a\":[2,1]}"));
  EXPECT_NE(Json(1), Json(1.0));  // kinds differ
}

}  // namespace
}  // namespace mpcn
