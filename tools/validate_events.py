#!/usr/bin/env python3
"""Validate an --events flight-recorder JSONL log against its schema.

The flight recorder (src/obs/events) is an append-only JSONL file written
by the shard coordinator and the explorer: one JSON object per line, each
carrying a shared-clock timestamp, a type, and that type's fields. CI
feeds real run logs through this script so schema drift (a renamed field,
a type emitted without its payload, interleaved torn lines) fails loudly
instead of silently rotting the `mpcn events` summaries.

Usage:
    tools/validate_events.py LOG.jsonl [--expect-workers N]

Checks:
  * every line parses as a JSON object with int `ts_us` >= 0 and a known
    string `type`;
  * each type carries its required fields with the right JSON kinds;
  * timestamps are non-decreasing (one writer, one clock);
  * with --expect-workers N: slots 0..N-1 each have a worker_spawn, at
    least one cell_dispatch, and a terminal worker_shutdown or
    worker_death — the spawn -> dispatch -> shutdown lifeline.

Exits 0 when the log validates, 1 on any violation.
"""

import argparse
import json
import sys

INT = int
STR = str
BOOL = bool

# type -> {field: kind}; every event also carries ts_us + type.
SCHEMA = {
    "worker_spawn": {"slot": INT, "pid": INT},
    "worker_death": {"slot": INT, "reason": STR},
    "worker_respawn": {"slot": INT, "pid": INT, "attempt": INT},
    "worker_backoff": {"slot": INT, "delay_ms": INT},
    "worker_shutdown": {"slot": INT, "cells_served": INT},
    "heartbeat_gap": {"slot": INT, "age_ms": INT},
    "cell_dispatch": {"cell_index": INT, "slot": INT},
    "cell_requeue": {"cell_index": INT, "slot": INT},
    "violation_found": {"schedule": INT, "why": STR},
    "race_found": {"schedule": INT},
    "crash_violation_found": {"schedule": INT},
    "shrink_begin": {"schedule": INT, "trace_len": INT},
    "shrink_end": {"schedule": INT, "shrunk_len": INT, "replays": INT,
                   "verified": BOOL},
}


def kind_ok(value, kind):
    if kind is INT:
        # bool is an int subclass in Python; an event field that should
        # be a count must not validate as true/false.
        return isinstance(value, int) and not isinstance(value, bool)
    if kind is BOOL:
        return isinstance(value, bool)
    return isinstance(value, str)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("log", help="--events JSONL file to validate")
    ap.add_argument("--expect-workers", type=int, default=0, metavar="N",
                    help="require a spawn -> dispatch -> shutdown/death "
                         "lifeline for slots 0..N-1")
    args = ap.parse_args(argv[1:])

    errors = []
    counts = {}
    last_ts = -1
    spawned, dispatched, terminated = set(), set(), set()

    try:
        with open(args.log, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {args.log}: {e}", file=sys.stderr)
        return 1

    for n, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {n}: blank line (the log is append-only "
                          f"JSONL, one event per line)")
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {n}: invalid JSON: {e}")
            continue
        if not isinstance(ev, dict):
            errors.append(f"line {n}: not a JSON object")
            continue
        ts = ev.get("ts_us")
        if not kind_ok(ts, INT) or ts < 0:
            errors.append(f"line {n}: missing/invalid 'ts_us'")
        else:
            if ts < last_ts:
                errors.append(f"line {n}: ts_us went backward "
                              f"({ts} < {last_ts}) — one writer, one "
                              f"clock: timestamps must be non-decreasing")
            last_ts = ts
        etype = ev.get("type")
        if not isinstance(etype, str):
            errors.append(f"line {n}: missing/invalid 'type'")
            continue
        counts[etype] = counts.get(etype, 0) + 1
        fields = SCHEMA.get(etype)
        if fields is None:
            errors.append(f"line {n}: unknown event type '{etype}'")
            continue
        for field, kind in fields.items():
            if field not in ev:
                errors.append(f"line {n}: {etype} missing '{field}'")
            elif not kind_ok(ev[field], kind):
                errors.append(f"line {n}: {etype} field '{field}' has "
                              f"wrong kind ({ev[field]!r})")
        slot = ev.get("slot")
        if etype == "worker_spawn":
            spawned.add(slot)
        elif etype == "cell_dispatch":
            dispatched.add(slot)
        elif etype in ("worker_shutdown", "worker_death"):
            terminated.add(slot)

    for slot in range(args.expect_workers):
        if slot not in spawned:
            errors.append(f"slot {slot}: no worker_spawn event")
        if slot not in dispatched:
            errors.append(f"slot {slot}: no cell_dispatch event")
        if slot not in terminated:
            errors.append(f"slot {slot}: no worker_shutdown/worker_death "
                          f"event — the lifeline never closed")

    total = sum(counts.values())
    for etype in sorted(counts):
        print(f"{counts[etype]:>6}  {etype}")
    if errors:
        print(f"\n{len(errors)} validation error(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    if total == 0:
        print("error: empty log — nothing validated", file=sys.stderr)
        return 1
    print(f"{args.log}: {total} event(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
