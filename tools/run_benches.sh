#!/usr/bin/env bash
# Regenerate the perf-trajectory JSONs at the repo root.
#
#   tools/run_benches.sh [BUILD_DIR]            # full run (the committed
#                                               # files; Release, default
#                                               # build dir build-release/)
#   SMOKE=1 tools/run_benches.sh [BUILD_DIR]    # 1-iteration CI smoke: same
#                                               # JSON paths, minimal runtime,
#                                               # any build type
#
# Writes, at the repo root:
#   BENCH_snapshot_ablation.json    (Google Benchmark --benchmark_format=json)
#   BENCH_simulation_overhead.json  (Report JSON via the bench's --json flag)
#   BENCH_scheduler_handoff.json    (Report JSON via the bench's --json flag)
#   BENCH_explore_throughput.json   (schedules/sec + replay overhead rows)
#
# Keep these regenerated-and-committed when a PR claims a hot-path win, so
# the trajectory across commits stays machine-readable.
#
# Full runs PIN -DCMAKE_BUILD_TYPE=Release: the committed numbers are
# perf claims, and the default RelWithDebInfo (or worse, a stray Debug
# cache) makes them quietly incomparable across commits. The default
# build dir is build-release/, auto-configured on first use; an explicit
# BUILD_DIR argument must already be a Release build. SMOKE mode only
# proves the JSON path works, so it accepts any build type (CI reuses
# its ordinary test build).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SMOKE="${SMOKE:-0}"
if [[ "$SMOKE" == "1" ]]; then
  BUILD="${1:-$ROOT/build}"
else
  BUILD="${1:-$ROOT/build-release}"
  if [[ ! -f "$BUILD/CMakeCache.txt" ]]; then
    echo "== configuring Release build in $BUILD"
    cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  fi
  if ! grep -q '^CMAKE_BUILD_TYPE:[^=]*=Release$' "$BUILD/CMakeCache.txt"; then
    echo "error: $BUILD is not a Release build; full bench runs must be" \
         "Release so the committed JSONs stay comparable" >&2
    echo "       (cmake -B $BUILD -S $ROOT -DCMAKE_BUILD_TYPE=Release)" >&2
    exit 1
  fi
  cmake --build "$BUILD" -j "$(nproc)"
fi

if [[ ! -x "$BUILD/bench_simulation_overhead" ]]; then
  echo "error: benches not built in $BUILD (cmake --build $BUILD -j)" >&2
  exit 1
fi

# --- bench_snapshot_ablation: Google Benchmark JSON on stdout -----------
if [[ -x "$BUILD/bench_snapshot_ablation" ]]; then
  GBENCH_ARGS=(--benchmark_format=json)
  if [[ "$SMOKE" == "1" ]]; then
    # One cheap case, minimal measuring time: keeps the JSON path green
    # without burning CI minutes.
    GBENCH_ARGS+=("--benchmark_filter=BM_AfekSnapshot/4\$"
                  --benchmark_min_time=0.01)
  fi
  echo "== bench_snapshot_ablation ${GBENCH_ARGS[*]}"
  "$BUILD/bench_snapshot_ablation" "${GBENCH_ARGS[@]}" \
      > "$ROOT/BENCH_snapshot_ablation.json"
elif [[ "$SMOKE" == "1" ]]; then
  # The CI smoke exists to prove this path works end to end; a missing
  # binary must fail, not silently validate the stale committed JSON.
  echo "error: bench_snapshot_ablation not built (Google Benchmark absent)" >&2
  exit 1
else
  echo "warning: bench_snapshot_ablation not built (Google Benchmark absent);" \
       "skipping BENCH_snapshot_ablation.json" >&2
fi

# --- table drivers: Report JSON via --json ------------------------------
if [[ "$SMOKE" != "1" ]]; then
  echo "== bench_simulation_overhead"
  "$BUILD/bench_simulation_overhead" \
      --json "$ROOT/BENCH_simulation_overhead.json"
  echo "== bench_scheduler_handoff"
  "$BUILD/bench_scheduler_handoff" \
      --json "$ROOT/BENCH_scheduler_handoff.json"
fi

# --- bench_explore_throughput: schedules/sec + replay overhead ----------
# Cheap enough to run in smoke mode too (tiny budget), so the CI leg
# exercises the JSON path end to end on every commit.
if [[ "$SMOKE" == "1" ]]; then
  echo "== bench_explore_throughput --budget 20"
  "$BUILD/bench_explore_throughput" --budget 20 \
      --json "$ROOT/BENCH_explore_throughput.json"
else
  echo "== bench_explore_throughput"
  "$BUILD/bench_explore_throughput" \
      --json "$ROOT/BENCH_explore_throughput.json"
fi

# --- schema gate: a regeneration that drops a key (or a half-written
# file from an interrupted run) must fail here, not corrupt the committed
# trajectory silently.
echo "== validate_benches.py"
python3 "$ROOT/tools/validate_benches.py" "$ROOT"

# --- events flight-recorder schema gate: a tiny sharded run writes a
# REAL log (spawn -> dispatch -> shutdown per worker), and
# validate_events.py pins its schema — so the recorder and the validator
# cannot drift apart without this script failing.
echo "== validate_events.py"
EVENTS_TMP="$(mktemp /tmp/mpcn_events.XXXXXX.jsonl)"
trap 'rm -f "$EVENTS_TMP"' EXIT
"$BUILD/mpcn" run snapshot_churn --in 3,0,1 --inputs 10,11,12 --seeds 1..4 \
    --shards 2 --fork-workers --telemetry-ms 25 --events "$EVENTS_TMP" \
    > /dev/null
python3 "$ROOT/tools/validate_events.py" "$EVENTS_TMP" --expect-workers 2

echo "wrote $(ls "$ROOT"/BENCH_*.json | xargs -n1 basename | tr '\n' ' ')"
