#!/usr/bin/env python3
"""Validate the committed BENCH_*.json perf-trajectory files.

Each committed bench JSON is a machine-readable perf claim; a regeneration
that silently drops a field (or a half-written file from an interrupted
run) breaks the cross-commit trajectory without failing any test. This
script pins the schema: every file must parse as JSON and carry the keys
the trajectory tooling reads.

Usage:
    tools/validate_benches.py [REPO_ROOT]

Exits 0 when every present file validates, 1 on any violation. Files are
allowed to be absent (a tree mid-bootstrap), but a present file must be
well-formed.
"""

import json
import sys
from pathlib import Path


def fail(errors, path, msg):
    errors.append(f"{path.name}: {msg}")


def require_keys(errors, path, obj, keys, where="top level"):
    for key in keys:
        if key not in obj:
            fail(errors, path, f"missing key '{key}' at {where}")


def validate_google_benchmark(errors, path, doc):
    """BENCH_snapshot_ablation.json: Google Benchmark --benchmark_format=json."""
    require_keys(errors, path, doc, ("context", "benchmarks"))
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail(errors, path, "'benchmarks' must be a non-empty list")
        return
    for i, row in enumerate(benches):
        require_keys(errors, path, row,
                     ("name", "iterations", "real_time", "cpu_time",
                      "time_unit"),
                     where=f"benchmarks[{i}]")


def validate_report(errors, path, doc):
    """Report-JSON benches (simulation_overhead, scheduler_handoff)."""
    require_keys(errors, path, doc,
                 ("title", "cells", "ok", "failed", "total_steps",
                  "records"))
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(errors, path, "'records' must be a non-empty list")
        return
    for i, rec in enumerate(records):
        require_keys(errors, path, rec,
                     ("scenario", "cell_index", "mode", "seed", "steps",
                      "ok"),
                     where=f"records[{i}]")
    if doc.get("cells") != len(records):
        fail(errors, path,
             f"'cells' ({doc.get('cells')}) != len(records) ({len(records)})")


def validate_explore_throughput(errors, path, doc):
    """BENCH_explore_throughput.json: schedules/sec + replay-overhead rows."""
    require_keys(errors, path, doc, ("title", "budget", "rows"))
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(errors, path, "'rows' must be a non-empty list")
        return
    for i, row in enumerate(rows):
        if "telemetry_overhead_x" in row:
            # streaming-telemetry overhead row (sharded off vs on; the
            # gated ratio is CPU time, wall is context)
            require_keys(errors, path, row,
                         ("name", "plain_cpu_ms", "telemetry_cpu_ms",
                          "plain_wall_ms", "telemetry_wall_ms",
                          "telemetry_overhead_x", "beat_cost_us", "reps"),
                         where=f"rows[{i}]")
        elif "replay_overhead_x" in row:
            # replay-overhead comparison row
            require_keys(errors, path, row,
                         ("name", "native_wall_ms", "replay_wall_ms",
                          "replay_overhead_x", "reps", "trace_len"),
                         where=f"rows[{i}]")
        else:
            # schedules/sec throughput row
            require_keys(errors, path, row,
                         ("name", "schedules", "wall_ms",
                          "schedules_per_second", "violations",
                          "total_steps"),
                         where=f"rows[{i}]")


VALIDATORS = {
    "BENCH_snapshot_ablation.json": validate_google_benchmark,
    "BENCH_simulation_overhead.json": validate_report,
    "BENCH_scheduler_handoff.json": validate_report,
    "BENCH_explore_throughput.json": validate_explore_throughput,
}


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    errors = []
    seen = 0
    for name, validator in sorted(VALIDATORS.items()):
        path = root / name
        if not path.exists():
            print(f"skip   {name} (absent)")
            continue
        seen += 1
        try:
            doc = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as e:
            fail(errors, path, f"invalid JSON: {e}")
            continue
        if not isinstance(doc, dict):
            fail(errors, path, "top level must be a JSON object")
            continue
        validator(errors, path, doc)
        status = "FAIL" if any(e.startswith(path.name) for e in errors) else "ok"
        print(f"{status:<6} {name}")
    if seen == 0:
        print("error: no BENCH_*.json files found — wrong root?", file=sys.stderr)
        return 1
    if errors:
        print(f"\n{len(errors)} validation error(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"all {seen} bench file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
